"""Parallel verification: work units over the (database, sigma) enumeration.

Every decision procedure in this package has the same outer shape — a
deterministic enumeration of candidate databases (and, for the
linear-time procedures, input-constant interpretations sigma within
each database) with an *independent* model check per pair.  That
independence is what the paper's operational strategy (and the WAVE
verifier after it) exploits, and it makes the enumeration embarrassingly
parallel: this module turns each (db_index, sigma_index) pair into a
:class:`WorkUnit` and runs the units either in-process (the classic
sequential loop) or on a :class:`~concurrent.futures.ProcessPoolExecutor`
selected with ``workers=N``.

Guarantees, regardless of worker count:

- **Deterministic verdicts.**  A violated property always reports the
  violation with the *lowest* (db_index, sigma_index) cursor, not the
  first one a worker happened to finish — so ``workers=1`` and
  ``workers=8`` return the same verdict, the same counterexample
  database and the same counterexample cursor.
- **Early cancellation.**  Once a violation at cursor *c* is confirmed,
  units beyond *c* are cancelled and no new units are submitted; units
  below *c* are still awaited (one of them could hold an even lower
  violation).
- **Budget integration.**  The parent governor keeps charging the
  database cap and the wall-clock deadline at submission time; workers
  enforce the per-pair caps and the remaining deadline locally, and the
  parent absorbs their counters as units complete so global caps and
  aggregate stats stay meaningful.
- **Resumable frontier.**  On interruption the checkpoint records the
  lowest incomplete cursor plus the out-of-order completions beyond it
  (``extra["completed_units"]``), so a resume — sequential or parallel —
  re-runs exactly the incomplete units.
- **Deterministic traces.**  When a :mod:`repro.obs` tracer is active,
  workers collect their unit's events locally and ship the batch back
  with the :class:`UnitOutcome`; the parent buffers batches and merges
  them into its tracer in **cursor order**, under the same
  prefix filter as the stats aggregation — so the traced unit set is
  identical at every worker count, and per-process timestamps stay
  monotonic in file order.

The streaming is lazy end-to-end: databases are pulled from the
canonical enumeration one at a time and shipped to workers in a bounded
submission window, never materialized as a list.

Workers are spawned per verification call with the task's specification
pickled once into each worker (service, property, precompiled Büchi
automaton, unit budget caps) — the per-unit messages carry only the
database and sigma.  ``REPRO_WORKERS`` in the environment supplies a
default worker count for entry points called without ``workers=``.

**Fault tolerance.**  A run that takes hours must survive the failures
hours bring: a worker segfault, a stuck unit, a SIGTERM from the
scheduler.  The :class:`Supervisor` wraps both backends with a failure
model:

- **Retry with backoff.**  A unit whose worker raises (anything that is
  not a budget verdict) is retried up to ``max_retries`` times with
  exponential backoff and deterministic jitter; verdicts stay
  lowest-cursor-deterministic because a unit's *result* is a pure
  function of ``(db, sigma)`` — retrying changes when it is computed,
  never what it is.
- **Crash recovery.**  A dead worker (``BrokenProcessPool``) kills the
  whole pool; the supervisor rebuilds it and re-runs the in-flight
  units one at a time (probation) so the culprit identifies itself
  instead of taking innocent units' retry budget with it.
- **Unit timeouts.**  With ``unit_timeout_s`` set, a unit that exceeds
  its wall-clock allowance is treated as hung: the pool is rebuilt
  (a stuck worker cannot be preempted, only killed) and the unit
  retried.
- **Quarantine.**  A unit that exhausts its retries is quarantined —
  recorded in ``stats["quarantined_units"]`` and the checkpoint — and
  the run *continues*; an otherwise-clean verdict degrades to
  INCONCLUSIVE (the quarantined space was never verified) instead of
  the whole run aborting.
- **Fallback.**  If the pool cannot be rebuilt (``max_pool_rebuilds``
  exceeded), the remaining units run in-process — slower, but the run
  finishes.
- **Crash-safe checkpoints.**  With ``checkpoint_every=N``, the merged
  frontier is atomically written every N completed units (and on
  SIGINT/SIGTERM via :data:`GLOBAL_STOP`), so a kill at any moment
  loses at most N units of work and can never corrupt the resume file.

Deterministic fault *injection* for testing all of the above lives in
:mod:`repro.faults`.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.faults import (
    CheckpointWriteInterrupted,
    FaultInjector,
    FaultPlan,
    resolve_fault_plan,
)
from repro.fol.bitset import SigmaBlock
from repro.obs import NULL_TRACER, CollectingTracer, TraceEvent, Tracer
from repro.verifier.budget import Budget, Checkpoint
from repro.verifier.results import VerificationBudgetExceeded

__all__ = [
    "WorkUnit",
    "UnitOutcome",
    "TaskSpec",
    "UnitStream",
    "EnumerationOutcome",
    "RetryPolicy",
    "RunInterrupted",
    "StopToken",
    "GLOBAL_STOP",
    "Supervisor",
    "apply_quarantine",
    "run_units",
    "unit_checker",
    "resolve_workers",
    "resolve_sigma_block",
    "frontier_checkpoint",
    "merge_unit_stats",
    "CLEAN",
    "VIOLATED",
    "BUDGET",
]

#: Clock seams: supervision code reads time and sleeps through these
#: module globals so tests can drive the retry/backoff schedule with a
#: patched clock instead of real sleeps.  The hot verification paths
#: keep calling ``time.monotonic`` directly — patching these affects
#: only supervision decisions.
_MONOTONIC = time.monotonic
_SLEEP = time.sleep

CLEAN = "clean"
VIOLATED = "violated"
BUDGET = "budget"

#: Stats keys aggregated by max (structure sizes); everything else sums.
_MAX_KEYS = frozenset({"buchi_states", "kripke_states"})


def resolve_workers(workers: int | None) -> int:
    """The effective worker count for one verification call.

    ``None`` falls back to the ``REPRO_WORKERS`` environment variable
    (production deployments set it once instead of threading a parameter
    through every call site), and finally to 1 — the sequential loop.
    """
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise ValueError(
                    f"REPRO_WORKERS must be an integer, got {raw!r}"
                ) from None
    if workers is None:
        return 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def resolve_sigma_block(sigma_block: int | None) -> int:
    """The effective sigma-block size for one verification call.

    ``None`` falls back to the ``REPRO_SIGMA_BLOCK`` environment
    variable and finally to 1 — classic one-sigma work units.  Sizes
    above 1 batch that many consecutive sigmas of a database into one
    ``(db_index, sigma_block)`` unit (see :class:`WorkUnit`).
    """
    if sigma_block is None:
        raw = os.environ.get("REPRO_SIGMA_BLOCK", "").strip()
        if raw:
            try:
                sigma_block = int(raw)
            except ValueError:
                raise ValueError(
                    f"REPRO_SIGMA_BLOCK must be an integer, got {raw!r}"
                ) from None
    if sigma_block is None:
        return 1
    if sigma_block < 1:
        raise ValueError(f"sigma_block must be >= 1, got {sigma_block}")
    return sigma_block


@dataclass(frozen=True)
class WorkUnit:
    """One independent model check with its cursor.

    Classically a single (database, sigma) pair; with sigma-blocking a
    unit covers a contiguous ``(db_index, sigma_block)`` *range* of
    sigmas of one database (``sigma_index``/``sigma`` then hold the
    first pair of the block, keeping the cursor meaning — and every
    pickled checkpoint — unchanged).  Blocked units amortise snapshot
    interning and label bitsets across their sigmas and keep pool
    dispatch overhead per block instead of per sigma (the
    too-fine-grained-unit fix of ROADMAP item 3).
    """

    db_index: int
    sigma_index: int
    database: Any
    sigma: dict | None  # None for the per-database procedures
    sigma_block: Any = None  # SigmaBlock | None

    @property
    def cursor(self) -> tuple[int, int]:
        return (self.db_index, self.sigma_index)

    def sigma_pairs(self) -> list:
        """The ``(sigma_index, sigma)`` pairs this unit covers, in order."""
        if self.sigma_block is not None:
            return list(self.sigma_block.entries)
        return [(self.sigma_index, self.sigma)]


@dataclass
class UnitOutcome:
    """What one work unit reported back.

    ``status`` is ``clean`` (no violation), ``violated`` (``detail``
    carries the procedure-specific counterexample payload), or
    ``budget`` (the unit's own governor struck; ``limit``/``message``
    say which, ``stats`` holds the partial counters).  ``events`` is the
    unit's trace-event batch (empty unless the task spec is traced):
    pool workers collect locally and ship the batch back here, and the
    parent merges batches into its tracer in cursor order.
    """

    db_index: int
    sigma_index: int
    status: str
    stats: dict = field(default_factory=dict)
    limit: str = ""
    message: str = ""
    detail: Any = None
    events: list[TraceEvent] = field(default_factory=list)
    #: Cursors of the sigmas a blocked unit fully checked (empty for
    #: classic single-sigma units — the unit's own cursor covers it).
    #: Checkpoints record these, so resume stays sigma-granular even
    #: when execution is block-granular.
    covered: list = field(default_factory=list)

    @property
    def cursor(self) -> tuple[int, int]:
        return (self.db_index, self.sigma_index)


@dataclass(frozen=True)
class TaskSpec:
    """Picklable description of the per-unit work of one entry point.

    ``procedure`` selects the registered checker; ``payload`` carries
    the procedure's own data (sentence, precompiled automaton, formula,
    flags); ``unit_limits`` are the caps each worker installs in its
    local :class:`Budget` (the per-pair/per-structure caps — the global
    caps stay with the parent governor).  ``traced`` tells workers to
    collect trace events per unit and ship them back with the outcome;
    when False (the default) workers run with the null tracer.
    ``faults`` is the deterministic :class:`~repro.faults.FaultPlan`
    under test, if any — workers perform the matching unit-site faults
    before running their checker (None, the default, costs one ``is
    None`` check per unit).  ``toggles`` carries the parent's resolved
    evaluation-engine switches (``compile``/``setwise``/``prune``);
    workers install them before warming plans, so a pool always agrees
    with its parent even when the parent's toggles were set
    programmatically rather than via ``REPRO_*`` variables.
    """

    procedure: str
    service: Any
    payload: Mapping[str, Any]
    unit_limits: Mapping[str, Any]
    traced: bool = False
    faults: FaultPlan | None = None
    toggles: Mapping[str, bool] | None = None

    def make_unit_budget(self, timeout_s: float | None) -> Budget:
        return Budget(
            max_snapshots=self.unit_limits.get("max_snapshots"),
            max_states=self.unit_limits.get("max_states"),
            max_valuations=self.unit_limits.get("max_valuations"),
            timeout_s=timeout_s,
        ).start()


# -- checker registry -------------------------------------------------------

#: procedure name -> checker(spec, unit, budget, cache) -> UnitOutcome.
#: Checkers must be module-level (picklable by reference) and raise
#: VerificationBudgetExceeded when their governor strikes; the backends
#: decide whether that propagates (sequential) or becomes a BUDGET
#: outcome (pool workers).
_CHECKERS: dict[str, Callable[[TaskSpec, WorkUnit, Budget, dict], UnitOutcome]] = {}


def unit_checker(procedure: str):
    """Register the per-unit checker of one decision procedure."""

    def register(fn):
        _CHECKERS[procedure] = fn
        return fn

    return register


def _load_checkers() -> None:
    """Import every module that registers a checker (worker processes)."""
    import repro.verifier.branching  # noqa: F401
    import repro.verifier.errors  # noqa: F401
    import repro.verifier.linear  # noqa: F401
    import repro.verifier.search  # noqa: F401


# -- worker-side plumbing ---------------------------------------------------

_WORKER_SPEC: TaskSpec | None = None
_WORKER_CACHE: dict | None = None


def _init_worker(spec: TaskSpec) -> None:
    global _WORKER_SPEC, _WORKER_CACHE
    _load_checkers()
    _WORKER_SPEC = spec
    _WORKER_CACHE = {}
    # Install the parent's resolved evaluation-engine toggles before any
    # plan is compiled: under a spawn-style pool the module defaults
    # would otherwise re-read the environment and could disagree with a
    # parent that toggled programmatically.
    if spec.toggles is not None:
        from repro.fol.bitset import set_setwise
        from repro.fol.compile import set_compilation
        from repro.service.compiled import set_pruning

        set_compilation(spec.toggles.get("compile", True))
        set_setwise(spec.toggles.get("setwise", True))
        set_pruning(spec.toggles.get("prune", True))
    # Compile the service's rule plans once per worker per TaskSpec (the
    # spec's service is unpickled exactly once per worker), so units never
    # pay plan-compile time.  No-op when compilation is toggled off.
    from repro.service.compiled import warm_service_plans

    warm_service_plans(spec.service)


def _execute_unit(
    spec: TaskSpec,
    unit: WorkUnit,
    timeout_s: float | None,
    cache: dict,
    injector: FaultInjector | None = None,
    attempt: int = 0,
) -> UnitOutcome:
    """Run one unit under its own local budget (worker or fallback).

    The shared core of the pool worker and the in-process pool-fallback
    path: a fresh unit budget from the spec's caps, a collecting tracer
    when the spec is traced, budget strikes converted to a BUDGET
    outcome.  ``attempt`` is the retry ordinal the supervisor assigned
    this execution — fault injection is keyed on it, so a transient
    injected fault fires on attempt 0 and lets the retry through.
    """
    if injector is not None:
        # may raise (a unit failure for the supervisor) or kill this
        # process outright when in_worker — that is the point
        injector.fire_unit(unit.cursor, attempt)
    gov = spec.make_unit_budget(timeout_s)
    tracer: Tracer = CollectingTracer() if spec.traced else NULL_TRACER
    gov.tracer = tracer
    started = time.monotonic()
    if tracer.active:
        tracer.emit("unit.start", cursor=unit.cursor)
    try:
        outcome = _CHECKERS[spec.procedure](spec, unit, gov, cache)
    except VerificationBudgetExceeded as exc:
        stats = dict(exc.stats)
        stats.setdefault("snapshots_explored", gov.snapshots_total)
        stats.setdefault("valuations_checked", gov.valuations)
        outcome = UnitOutcome(
            unit.db_index,
            unit.sigma_index,
            BUDGET,
            stats=stats,
            limit=exc.limit,
            message=str(exc),
        )
    if tracer.active:
        tracer.emit(
            "unit.finish", cursor=unit.cursor,
            dur=time.monotonic() - started, status=outcome.status,
        )
        outcome.events = tracer.events
    return outcome


def _pool_check(
    unit: WorkUnit, timeout_s: float | None, attempt: int = 0
) -> UnitOutcome:
    """Run one unit in a worker: local budget, shared per-worker cache."""
    spec = _WORKER_SPEC
    assert spec is not None, "worker used before initialization"
    injector = None
    if spec.faults is not None:
        injector = FaultInjector(spec.faults, in_worker=True)
    return _execute_unit(
        spec, unit, timeout_s, _WORKER_CACHE,
        injector=injector, attempt=attempt,
    )


# -- the unit stream --------------------------------------------------------

class UnitStream:
    """Lazy, resumable iterator of pending work units.

    Wraps the (streaming) database enumeration, applies the resume
    cursor and the completed-units frontier, charges the parent governor
    per database, and keeps ``cursor`` pointed at the unit most recently
    yielded (or the database being entered) — the position an
    interruption should checkpoint.
    """

    def __init__(
        self,
        databases: Iterable,
        gov: Budget,
        stats: dict,
        *,
        sigma_fn: Callable[[Any], Iterable[Mapping[str, Any]]] | None = None,
        resume: Checkpoint | None = None,
        on_database: Callable[[Any], None] | None = None,
        block_size: int = 1,
    ) -> None:
        self._databases = databases
        self._gov = gov
        self._stats = stats
        self._sigma_fn = sigma_fn
        self._on_database = on_database
        self._block_size = max(1, block_size)
        self._skip_db = resume.db_index if resume is not None else 0
        self._skip_sigma = resume.sigma_index if resume is not None else 0
        self._done = resume.completed_units() if resume is not None else frozenset()
        self._db_marks: dict[int, tuple[int, int]] = {}
        self.cursor: tuple[int, int] = (self._skip_db, self._skip_sigma)

    def __iter__(self) -> Iterator[WorkUnit]:
        tracer = self._gov.tracer
        for db_index, db in enumerate(self._databases):
            if db_index < self._skip_db or (
                self._sigma_fn is None and (db_index, 0) in self._done
            ):
                self._stats["databases_skipped"] += 1
                continue
            self.cursor = (db_index, 0)
            self._gov.charge_database()
            self._stats["databases_checked"] += 1
            self._db_marks[db_index] = (
                self._stats["databases_checked"],
                self._stats["databases_skipped"],
            )
            if tracer.active:
                tracer.emit(
                    "database.enumerated", cursor=(db_index, 0),
                    db_index=db_index, domain=len(db.domain),
                )
            if self._on_database is not None:
                self._on_database(db)
            if self._sigma_fn is None:
                yield WorkUnit(db_index, 0, db, None)
                continue
            n_sigmas = 0
            # Pending (sigma_index, sigma) pairs batched into units of
            # up to block_size consecutive sigmas (size 1 — the default
            # — reproduces the classic one-pair unit exactly, pickled
            # form included).
            batch: list[tuple[int, dict]] = []
            for sigma_index, sigma in enumerate(self._sigma_fn(db)):
                n_sigmas += 1
                if db_index == self._skip_db and sigma_index < self._skip_sigma:
                    continue
                if (db_index, sigma_index) in self._done:
                    continue
                batch.append((sigma_index, dict(sigma)))
                if len(batch) >= self._block_size:
                    yield self._make_unit(db_index, db, batch)
                    batch = []
            if batch:
                yield self._make_unit(db_index, db, batch)
            if tracer.active:
                tracer.emit(
                    "sigma.batch", cursor=(db_index, 0), count=n_sigmas
                )

    def _make_unit(
        self, db_index: int, db, batch: list[tuple[int, dict]]
    ) -> WorkUnit:
        first_index, first_sigma = batch[0]
        self.cursor = (db_index, first_index)
        if len(batch) == 1 and self._block_size == 1:
            return WorkUnit(db_index, first_index, db, first_sigma)
        return WorkUnit(
            db_index, first_index, db, first_sigma,
            sigma_block=SigmaBlock(db_index, tuple(batch)),
        )

    def clamp_db_stats(self, db_index: int) -> None:
        """Rewind the database counters to their values when ``db_index``
        was entered.

        The pool's submission window pulls this stream ahead of the
        units actually resolved, so on a violation the counters must be
        reset to the prefix a sequential run would have charged before
        stopping at that database.
        """
        mark = self._db_marks.get(db_index)
        if mark is not None:
            self._stats["databases_checked"] = mark[0]
            self._stats["databases_skipped"] = mark[1]


# -- outcome aggregation ----------------------------------------------------

def merge_unit_stats(agg: dict, unit_stats: Mapping[str, Any]) -> None:
    """Fold one unit's counters into the aggregate (sums; max for sizes)."""
    for key, value in unit_stats.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        if key in _MAX_KEYS:
            agg[key] = max(agg.get(key, 0), value)
        else:
            agg[key] = agg.get(key, 0) + value


@dataclass
class EnumerationOutcome:
    """How one enumeration run ended, backend-independent.

    Exactly one of three shapes: a ``violation`` (lowest cursor), an
    ``interrupted`` budget exception with the ``pending`` frontier and
    ``completed`` out-of-order cursors, or neither (exhausted — HOLDS).
    ``quarantined`` is orthogonal: units that exhausted their retry
    budget, each recorded as ``{"cursor", "attempts", "error"}`` — a
    non-empty list degrades an otherwise-clean run to INCONCLUSIVE via
    :func:`apply_quarantine`.
    """

    violation: UnitOutcome | None = None
    interrupted: VerificationBudgetExceeded | None = None
    pending: list[tuple[int, int]] = field(default_factory=list)
    completed: list[tuple[int, int]] = field(default_factory=list)
    unit_stats: dict = field(default_factory=dict)
    quarantined: list[dict] = field(default_factory=list)


def frontier_checkpoint(
    outcome: EnumerationOutcome,
    *,
    procedure: str,
    property_name: str = "",
    domain_size: int | None = None,
    up_to_iso: bool | None = None,
    workers: int | None = None,
    resume: Checkpoint | None = None,
    extra: Mapping[str, Any] | None = None,
) -> Checkpoint:
    """The merged resumable checkpoint of an interrupted enumeration.

    The cursor is the lowest incomplete unit; completions beyond it
    (out-of-order parallel finishes, plus any carried over from the
    checkpoint being resumed) are recorded so the next run skips them.
    Quarantined units count as incomplete — a resume retries them with
    a fresh attempt budget — and are additionally recorded under
    ``extra["quarantined_units"]`` (the ``repro.checkpoint/2`` field)
    so the resuming operator can see what kept failing.
    """
    quarantined = sorted(
        {tuple(q["cursor"]) for q in outcome.quarantined}
    )
    pending = sorted(set(outcome.pending) | set(quarantined))
    cursor = pending[0] if pending else (0, 0)
    done: set[tuple[int, int]] = set(outcome.completed)
    if resume is not None:
        done |= resume.completed_units()
    ahead = sorted(c for c in done if c > cursor)
    payload = dict(extra or {})
    if ahead:
        payload["completed_units"] = [list(c) for c in ahead]
    if quarantined:
        payload["quarantined_units"] = [list(c) for c in quarantined]
    return Checkpoint(
        procedure=procedure,
        property_name=property_name,
        db_index=cursor[0],
        sigma_index=cursor[1],
        domain_size=domain_size,
        up_to_iso=up_to_iso,
        workers=workers,
        extra=payload,
    )


# -- supervision ------------------------------------------------------------

class RunInterrupted(VerificationBudgetExceeded):
    """A cooperative stop (SIGINT/SIGTERM) interrupted the run.

    A subclass of the budget exception so the whole graceful-degradation
    machinery — INCONCLUSIVE verdict, partial stats, resumable frontier
    checkpoint — applies to signals exactly as it does to deadlines;
    ``limit`` is always ``"interrupted"`` so callers (the CLI exit code)
    can tell the two apart.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(
            f"run interrupted by {reason}", limit="interrupted"
        )
        self.reason = reason


class StopToken:
    """A latch a signal handler can set from outside the run loop.

    Signal handlers must do almost nothing (they run between arbitrary
    bytecodes); setting this flag is all the CLI's SIGINT/SIGTERM
    handlers do.  The supervision loop polls it at every scheduling
    step and turns it into a :class:`RunInterrupted` — so the engine
    winds down through its own checkpoint-flushing path instead of a
    ``KeyboardInterrupt`` unwinding mid-pool.
    """

    def __init__(self) -> None:
        self.reason: str | None = None

    def set(self, reason: str = "signal") -> None:
        self.reason = reason

    def clear(self) -> None:
        self.reason = None

    def __bool__(self) -> bool:
        return self.reason is not None


#: The process-wide stop token the CLI's signal handlers set.  Library
#: callers who want their own scoping can pass a private token via
#: ``Supervisor(stop=...)``.
GLOBAL_STOP = StopToken()


@dataclass(frozen=True)
class RetryPolicy:
    """How transient unit failures are retried.

    ``max_retries`` bounds the *re*-executions of one unit (0 disables
    retry: first failure quarantines).  The backoff before retry *n*
    (0-based) is ``min(backoff_max_s, backoff_base_s * 2**n)`` scaled by
    ``1 + backoff_jitter * u`` with ``u`` drawn deterministically from
    the fault-plan seed and the unit cursor — reproducible schedules,
    but no thundering herd when many units fail at once.
    ``unit_timeout_s`` is the per-execution wall-clock allowance (pool
    backend only — an in-process unit cannot be preempted);
    ``max_pool_rebuilds`` bounds pool reconstruction before the run
    falls back to the in-process backend.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    backoff_jitter: float = 0.1
    unit_timeout_s: float | None = None
    max_pool_rebuilds: int = 8

    def backoff_s(
        self, cursor: tuple[int, int], attempt: int, seed: int = 0
    ) -> float:
        base = min(self.backoff_max_s, self.backoff_base_s * (2 ** attempt))
        if self.backoff_jitter <= 0:
            return base
        u = random.Random(
            f"{seed}:{cursor[0]}:{cursor[1]}:{attempt}"
        ).random()
        return base * (1.0 + self.backoff_jitter * u)


def _env_number(name: str, convert, minimum) -> Any:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = convert(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be {'an integer' if convert is int else 'a number'},"
            f" got {raw!r}"
        ) from None
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


class Supervisor:
    """Failure handling for one enumeration run.

    Owns the retry policy, the resolved fault plan, the stop token, the
    quarantine record, and the periodic-checkpoint sink.  One instance
    per ``run_units`` call; entry points build it from their
    ``retry=`` / ``unit_timeout_s=`` / ``faults=`` / ``checkpoint_path=``
    / ``checkpoint_every=`` keywords (environment fallbacks:
    ``REPRO_RETRY``, ``REPRO_UNIT_TIMEOUT_S``, ``REPRO_FAULTS``,
    ``REPRO_CHECKPOINT_EVERY``) and point ``frontier_kwargs`` at their
    :func:`frontier_checkpoint` parameters so mid-run checkpoints carry
    the same identity as end-of-run ones.
    """

    def __init__(
        self,
        policy: RetryPolicy | None = None,
        *,
        plan: FaultPlan | None = None,
        checkpoint_path: Any = None,
        checkpoint_every: int | None = None,
        stop: StopToken | None = None,
    ) -> None:
        self.policy = policy or RetryPolicy()
        self.plan = plan
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.stop = stop if stop is not None else GLOBAL_STOP
        #: set by the entry point: frontier_checkpoint(...) keywords for
        #: periodic checkpoints (None = periodic checkpointing disabled)
        self.frontier_kwargs: dict[str, Any] | None = None
        self.quarantined: list[dict] = []
        self.retries = 0
        self.pool_rebuilds = 0
        self.checkpoints_written = 0
        self._since_checkpoint = 0
        self._stop_announced = False

    @classmethod
    def resolve(
        cls,
        *,
        retry: int | None = None,
        unit_timeout_s: float | None = None,
        faults: Any = None,
        checkpoint_path: Any = None,
        checkpoint_every: int | None = None,
        stop: StopToken | None = None,
    ) -> "Supervisor":
        """Build the supervisor for one call, applying env fallbacks."""
        if retry is None:
            retry = _env_number("REPRO_RETRY", int, 0)
        if unit_timeout_s is None:
            unit_timeout_s = _env_number("REPRO_UNIT_TIMEOUT_S", float, 0.0)
        if checkpoint_every is None:
            checkpoint_every = _env_number("REPRO_CHECKPOINT_EVERY", int, 1)
        if retry is not None and retry < 0:
            raise ValueError(f"retry must be >= 0, got {retry}")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        defaults = RetryPolicy()
        policy = RetryPolicy(
            max_retries=defaults.max_retries if retry is None else retry,
            unit_timeout_s=unit_timeout_s,
        )
        return cls(
            policy,
            plan=resolve_fault_plan(faults),
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            stop=stop,
        )

    # -- stop / fault plumbing --------------------------------------------

    def check_stop(self, tracer: Tracer) -> None:
        """Raise :class:`RunInterrupted` when the stop token is set."""
        reason = self.stop.reason
        if reason is None:
            return
        if tracer.active and not self._stop_announced:
            tracer.emit("run.interrupted", signal=reason)
        self._stop_announced = True
        raise RunInterrupted(reason)

    def announce_fault(
        self, tracer: Tracer, site: str,
        cursor: tuple[int, int], attempt: int,
    ) -> None:
        """Emit ``fault.injected`` parent-side for a matching fault.

        The parent announces because the fault may kill the worker
        before it could ship its own trace events home.
        """
        if self.plan is None or not tracer.active:
            return
        spec = self.plan.match(site, cursor, attempt)
        if spec is not None:
            tracer.emit(
                "fault.injected", cursor=cursor,
                kind=spec.kind, site=site, attempt=attempt,
            )

    def local_injector(self) -> FaultInjector | None:
        """The in-process injector (sequential backend, checkpoint site)."""
        if self.plan is None:
            return None
        return FaultInjector(self.plan, in_worker=False, _sleep=_SLEEP)

    # -- retry / quarantine ------------------------------------------------

    def should_retry(self, attempt: int) -> bool:
        return attempt < self.policy.max_retries

    def backoff_for(self, cursor: tuple[int, int], attempt: int) -> float:
        seed = self.plan.seed if self.plan is not None else 0
        return self.policy.backoff_s(cursor, attempt, seed)

    def note_retry(
        self, tracer: Tracer, cursor: tuple[int, int],
        attempt: int, delay: float, error: BaseException | str,
    ) -> None:
        self.retries += 1
        if tracer.active:
            tracer.emit(
                "unit.retry", cursor=cursor, attempt=attempt,
                backoff_s=round(delay, 6), error=str(error),
            )

    def quarantine(
        self, out: EnumerationOutcome, tracer: Tracer,
        cursor: tuple[int, int], attempts: int, error: BaseException | str,
    ) -> None:
        """Record a poison unit; the run continues without it."""
        record = {
            "cursor": tuple(cursor),
            "attempts": attempts,
            "error": str(error),
        }
        self.quarantined.append(record)
        out.quarantined.append(record)
        if tracer.active:
            tracer.emit(
                "unit.quarantined", cursor=cursor,
                attempts=attempts, error=str(error),
            )

    def counters(self) -> dict[str, int]:
        """Supervision counters folded into the run's stats (only when
        something actually happened, so fault-free runs keep stats
        byte-identical to the unsupervised engine)."""
        out: dict[str, int] = {}
        if self.retries:
            out["units_retried"] = self.retries
        if self.pool_rebuilds:
            out["pool_rebuilds"] = self.pool_rebuilds
        if self.checkpoints_written:
            out["checkpoints_written"] = self.checkpoints_written
        return out

    # -- periodic checkpoints ----------------------------------------------

    def note_completed(
        self, tracer: Tracer, out: EnumerationOutcome,
        incomplete: Iterable[tuple[int, int]] = (),
    ) -> None:
        """One unit completed; maybe flush a periodic checkpoint."""
        if self.checkpoint_path is None or self.checkpoint_every is None:
            return
        self._since_checkpoint += 1
        if self._since_checkpoint < self.checkpoint_every:
            return
        self._since_checkpoint = 0
        self.write_checkpoint(tracer, out, incomplete)

    def write_checkpoint(
        self, tracer: Tracer, out: EnumerationOutcome,
        incomplete: Iterable[tuple[int, int]] = (),
    ) -> None:
        """Atomically write the current frontier to ``checkpoint_path``.

        ``incomplete`` is the set of cursors known to be in flight,
        queued for retry, or otherwise unfinished; everything completed
        is recorded so a resume re-runs exactly the rest.  An injected
        ``checkpoint`` fault interrupts between the temp write and the
        rename — the previous file must survive (that is the test).
        """
        if self.checkpoint_path is None or self.frontier_kwargs is None:
            return
        from repro.io import save_checkpoint

        snapshot = EnumerationOutcome(
            pending=sorted(set(incomplete)),
            completed=list(out.completed),
            quarantined=list(out.quarantined),
        )
        ckpt = frontier_checkpoint(snapshot, **self.frontier_kwargs)
        cursor = (ckpt.db_index, ckpt.sigma_index)
        interrupt = None
        injector = self.local_injector()
        if injector is not None:
            self.announce_fault(tracer, "checkpoint", cursor, 0)
            interrupt = lambda: injector.checkpoint_interrupt(cursor)  # noqa: E731
        try:
            save_checkpoint(ckpt, self.checkpoint_path, interrupt=interrupt)
        except CheckpointWriteInterrupted:
            # the simulated kill: this update is lost, the previous
            # checkpoint file is intact — exactly what a real SIGKILL
            # between write and rename leaves behind
            return
        self.checkpoints_written += 1
        if tracer.active:
            tracer.emit(
                "checkpoint.saved", cursor=cursor,
                path=str(self.checkpoint_path),
                completed=len(snapshot.completed),
            )


def apply_quarantine(outcome: EnumerationOutcome, stats: dict) -> None:
    """Fold quarantine state into the run's stats and verdict shape.

    Quarantined cursors land in ``stats["quarantined_units"]``
    regardless of verdict.  A run that would otherwise report HOLDS is
    marked interrupted instead — the quarantined units were *never
    verified*, so claiming the property holds over them would be
    unsound; the standard degradation path then returns INCONCLUSIVE
    with a checkpoint whose pending frontier retries them.  A VIOLATED
    verdict stands: the counterexample is genuine whatever happened to
    other units.
    """
    if not outcome.quarantined:
        return
    cursors = sorted({tuple(q["cursor"]) for q in outcome.quarantined})
    stats["quarantined_units"] = [list(c) for c in cursors]
    if outcome.violation is None and outcome.interrupted is None:
        preview = "; ".join(
            f"{tuple(q['cursor'])}: {q['error']}"
            for q in outcome.quarantined[:3]
        )
        outcome.interrupted = VerificationBudgetExceeded(
            f"{len(cursors)} work unit(s) quarantined after repeated "
            f"failures ({preview})",
            limit="quarantined_units",
        )


# -- backends ---------------------------------------------------------------

def run_units(
    spec: TaskSpec,
    stream: UnitStream,
    gov: Budget,
    workers: int,
    supervisor: Supervisor | None = None,
) -> EnumerationOutcome:
    """Run every pending unit; first confirmed lowest-cursor violation wins.

    ``workers <= 1`` is the classic sequential loop sharing the parent
    governor (identical charging order to the pre-parallel verifier);
    ``workers > 1`` fans units out to a process pool.  ``supervisor``
    carries the failure model (retry, quarantine, timeouts, periodic
    checkpoints, stop token); None builds one from the environment
    defaults.
    """
    sup = supervisor if supervisor is not None else Supervisor.resolve()
    if workers <= 1:
        out = _run_sequential(spec, stream, gov, sup)
    else:
        out = _run_pool(spec, stream, gov, workers, sup)
    for key, value in sup.counters().items():
        out.unit_stats[key] = out.unit_stats.get(key, 0) + value
    return out


def _attempt_unit_local(
    spec: TaskSpec,
    unit: WorkUnit,
    gov: Budget,
    cache: dict,
    sup: Supervisor,
    out: EnumerationOutcome,
    first_attempt: int = 0,
) -> UnitOutcome | None:
    """Run one unit in-process under the retry policy.

    Returns the outcome, or None when the unit was quarantined.  Budget
    exhaustion propagates — it is a verdict about the search, not a
    failure of the machinery.  Injected ``crash`` faults are downgraded
    to transient errors by the injector (``in_worker=False``): the
    parent process is not expendable.
    """
    checker = _CHECKERS[spec.procedure]
    tracer = gov.tracer
    injector = sup.local_injector()
    attempt = first_attempt
    while True:
        sup.check_stop(tracer)
        sup.announce_fault(tracer, "unit", unit.cursor, attempt)
        if tracer.active:
            tracer.emit("unit.start", cursor=unit.cursor)
        started = time.monotonic()
        try:
            if injector is not None:
                injector.fire_unit(unit.cursor, attempt)
            return_value = checker(spec, unit, gov, cache)
        except VerificationBudgetExceeded:
            if tracer.active:
                tracer.emit(
                    "unit.finish", cursor=unit.cursor,
                    dur=time.monotonic() - started, status=BUDGET,
                )
            raise
        except Exception as exc:
            if tracer.active:
                tracer.emit(
                    "unit.finish", cursor=unit.cursor,
                    dur=time.monotonic() - started, status="failed",
                )
            if not sup.should_retry(attempt):
                sup.quarantine(out, tracer, unit.cursor, attempt + 1, exc)
                return None
            delay = sup.backoff_for(unit.cursor, attempt)
            sup.note_retry(tracer, unit.cursor, attempt, delay, exc)
            _SLEEP(delay)
            attempt += 1
            continue
        if tracer.active:
            tracer.emit(
                "unit.finish", cursor=unit.cursor,
                dur=time.monotonic() - started, status=return_value.status,
            )
        return return_value


def _run_sequential(
    spec: TaskSpec, stream: UnitStream, gov: Budget, sup: Supervisor
) -> EnumerationOutcome:
    """The classic in-process loop; trace events stream live, in cursor
    order, straight into the parent tracer (no batching needed — units
    complete in the order the stream yields them)."""
    tracer = gov.tracer
    cache: dict = {}
    out = EnumerationOutcome()
    try:
        for unit in stream:
            result = _attempt_unit_local(spec, unit, gov, cache, sup, out)
            if result is None:  # quarantined; move on
                continue
            if result.status == VIOLATED:
                merge_unit_stats(out.unit_stats, result.stats)
                out.violation = result
                return out
            # A blocked unit reports every sigma it covered so resume
            # frontiers stay sigma-granular; classic units cover exactly
            # their own cursor.
            out.completed.extend(result.covered or [unit.cursor])
            merge_unit_stats(out.unit_stats, result.stats)
            sup.note_completed(tracer, out)
    except VerificationBudgetExceeded as exc:
        out.interrupted = exc
        out.pending = [stream.cursor]
        sup.write_checkpoint(tracer, out, incomplete=out.pending)
    return out


@dataclass
class _Flight:
    """One submitted pool execution: the unit, the retry ordinal this
    execution runs at, and its wall-clock deadline (None when no unit
    timeout is configured)."""

    unit: WorkUnit
    attempt: int
    deadline: float | None


def _run_pool(
    spec: TaskSpec, stream: UnitStream, gov: Budget, workers: int,
    sup: Supervisor,
) -> EnumerationOutcome:
    out = EnumerationOutcome()
    tracer = gov.tracer
    policy = sup.policy
    window = max(2 * workers, workers + 2)
    units = iter(stream)
    exhausted = False
    stop_stream = False  # no more units pulled from the stream
    halt = False  # interrupted: nothing new starts, running units drain
    in_flight: dict[Future, _Flight] = {}
    #: failed units waiting out their backoff: (release_time, unit, attempt)
    retry_q: list[tuple[float, WorkUnit, int]] = []
    #: units to re-run one at a time after a pool break (crash suspects)
    probation: list[tuple[WorkUnit, int]] = []
    #: units ready for immediate resubmission (due retries, timeout innocents)
    pending_submit: list[tuple[WorkUnit, int]] = []
    seq_cache: dict = {}  # checker cache for the in-process fallback
    best: UnitOutcome | None = None
    # Per-unit stats, folded into out.unit_stats only once the verdict
    # is known: on a violation the aggregate must cover exactly the
    # prefix of units at or below the winning cursor (what a sequential
    # run charges), not whatever speculative units happened to finish
    # before cancellation — stats stay worker-count-independent.
    stats_by_cursor: dict[tuple[int, int], Mapping[str, Any]] = {}
    # Trace-event batches shipped back by workers, buffered until the
    # verdict is known and then merged into the parent tracer in cursor
    # order under the same filter as the stats — the trace covers the
    # same unit set at every worker count.
    events_by_cursor: dict[tuple[int, int], list[TraceEvent]] = {}
    pool: ProcessPoolExecutor | None = None

    def flush_events(limit_cursor: tuple[int, int] | None) -> None:
        if not gov.tracer.active:
            return
        for cursor in sorted(events_by_cursor):
            if limit_cursor is not None and cursor > limit_cursor:
                continue
            for event in events_by_cursor[cursor]:
                gov.tracer.emit_event(event)

    def interrupt(exc: VerificationBudgetExceeded) -> None:
        nonlocal stop_stream, halt
        if out.interrupted is None:
            out.interrupted = exc
        stop_stream = True
        halt = True
        # queued work will not run; record it as pending for the resume
        out.pending.extend(u.cursor for (_, u, _a) in retry_q)
        out.pending.extend(u.cursor for (u, _a) in probation)
        out.pending.extend(u.cursor for (u, _a) in pending_submit)
        retry_q.clear()
        probation.clear()
        pending_submit.clear()

    def incomplete_cursors() -> set[tuple[int, int]]:
        cursors = {flight.unit.cursor for flight in in_flight.values()}
        cursors.update(u.cursor for (_, u, _a) in retry_q)
        cursors.update(u.cursor for (u, _a) in probation)
        cursors.update(u.cursor for (u, _a) in pending_submit)
        if not exhausted:
            cursors.add(stream.cursor)
        return cursors

    def handle_result(unit: WorkUnit, result: UnitOutcome) -> None:
        nonlocal best
        if result.events:
            events_by_cursor[unit.cursor] = result.events
        if result.status == BUDGET:
            out.pending.append(unit.cursor)
            stats_by_cursor[unit.cursor] = result.stats
            interrupt(
                VerificationBudgetExceeded(
                    result.message, limit=result.limit, stats=result.stats,
                )
            )
            return
        if result.status == VIOLATED:
            # the violating sigma's own cursor, plus any clean sigmas a
            # blocked unit checked before it
            out.completed.extend([*result.covered, result.cursor])
        else:
            out.completed.extend(result.covered or [unit.cursor])
        stats_by_cursor[unit.cursor] = result.stats
        if result.status == VIOLATED and (
            best is None or result.cursor < best.cursor
        ):
            best = result
        try:
            gov.absorb(result.stats)
        except VerificationBudgetExceeded as exc:
            interrupt(exc)
        sup.note_completed(tracer, out, incomplete=incomplete_cursors())

    def handle_failure(
        unit: WorkUnit, attempt: int, error: BaseException | str
    ) -> None:
        if sup.should_retry(attempt):
            delay = sup.backoff_for(unit.cursor, attempt)
            sup.note_retry(tracer, unit.cursor, attempt, delay, error)
            retry_q.append((_MONOTONIC() + delay, unit, attempt + 1))
        else:
            sup.quarantine(out, tracer, unit.cursor, attempt + 1, error)

    def kill_pool() -> None:
        # a hung or crashed worker cannot be joined; SIGKILL the whole
        # cohort and abandon the executor without waiting
        nonlocal pool
        if pool is None:
            return
        procs = getattr(pool, "_processes", None)
        for proc in list((procs or {}).values()):
            try:
                proc.kill()
            except Exception:
                pass  # already reaped
        pool.shutdown(wait=False, cancel_futures=True)
        pool = None

    def rebuild(cause: str) -> None:
        nonlocal pool
        kill_pool()
        sup.pool_rebuilds += 1
        giving_up = sup.pool_rebuilds > policy.max_pool_rebuilds
        if tracer.active:
            tracer.emit(
                "pool.rebuilt", cursor=stream.cursor, cause=cause,
                rebuilds=sup.pool_rebuilds, fallback=giving_up,
            )
        if giving_up:
            return  # in-process fallback from here on
        try:
            pool = ProcessPoolExecutor(
                max_workers=workers, initializer=_init_worker,
                initargs=(spec,),
            )
        except Exception:
            pool = None

    def on_pool_break() -> None:
        flights = sorted(in_flight.values(), key=lambda f: f.unit.cursor)
        in_flight.clear()
        if len(flights) == 1:
            # a unit that breaks the pool while running alone is the
            # proven culprit: charge the failure to its retry budget
            flight = flights[0]
            handle_failure(
                flight.unit, flight.attempt,
                "worker process died (pool broken)",
            )
        else:
            # cannot tell which in-flight unit killed the pool: re-run
            # them one at a time so the culprit identifies itself
            # without charging the innocents' retry budget
            probation.extend((f.unit, f.attempt) for f in flights)
        rebuild("worker-crash")

    def scan_timeouts() -> None:
        if policy.unit_timeout_s is None or not in_flight:
            return
        now = _MONOTONIC()
        expired: list[_Flight] = []
        innocent: list[_Flight] = []
        for flight in in_flight.values():
            if flight.deadline is not None and now >= flight.deadline:
                expired.append(flight)
            else:
                innocent.append(flight)
        if not expired:
            return
        in_flight.clear()
        for flight in sorted(expired, key=lambda f: f.unit.cursor):
            if tracer.active:
                tracer.emit(
                    "unit.timeout", cursor=flight.unit.cursor,
                    attempt=flight.attempt,
                    timeout_s=policy.unit_timeout_s,
                )
            handle_failure(
                flight.unit, flight.attempt,
                f"unit exceeded {policy.unit_timeout_s}s wall-clock "
                "timeout",
            )
        # the innocents lose their in-progress work with the pool, but
        # not their retry budget: resubmit at the same attempt
        pending_submit.extend(
            (f.unit, f.attempt)
            for f in sorted(innocent, key=lambda f: f.unit.cursor)
        )
        rebuild("unit-timeout")

    def launch(unit: WorkUnit, attempt: int) -> bool:
        sup.announce_fault(tracer, "unit", unit.cursor, attempt)
        deadline = None
        if policy.unit_timeout_s is not None:
            deadline = _MONOTONIC() + policy.unit_timeout_s
        try:
            fut = pool.submit(
                _pool_check, unit, gov.remaining_time(), attempt
            )
        except (BrokenProcessPool, RuntimeError):
            # the pool died under us mid-submit; this unit never ran
            pending_submit.insert(0, (unit, attempt))
            on_pool_break()
            return False
        in_flight[fut] = _Flight(unit, attempt, deadline)
        return True

    try:
        pool = ProcessPoolExecutor(
            max_workers=workers, initializer=_init_worker, initargs=(spec,)
        )
    except Exception:
        pool = None  # cannot even start a pool: run everything in-process

    try:
        while True:
            # cooperative stop (SIGINT/SIGTERM via the stop token)
            if sup.stop and out.interrupted is None:
                try:
                    sup.check_stop(tracer)
                except RunInterrupted as exc:
                    # promptness over drain: kill running units, record
                    # them pending, and flush the final checkpoint
                    for flight in in_flight.values():
                        out.pending.append(flight.unit.cursor)
                    in_flight.clear()
                    interrupt(exc)
                    kill_pool()

            if halt and not in_flight:
                break

            # promote retries whose backoff has elapsed
            if retry_q and not halt:
                now = _MONOTONIC()
                due = sorted(
                    (e for e in retry_q if e[0] <= now),
                    key=lambda e: e[1].cursor,
                )
                if due:
                    retry_q[:] = [e for e in retry_q if e[0] > now]
                    pending_submit.extend((u, a) for (_, u, a) in due)

            if pool is not None and not halt:
                # keep the submission window full (one unit at a time
                # while crash suspects are on probation).  The stream
                # itself can raise (database cap, deadline during
                # enumeration) — that interrupts submission but
                # outstanding units still drain.
                if probation:
                    if not in_flight:
                        unit, attempt = probation.pop(0)
                        launch(unit, attempt)
                else:
                    while pool is not None and len(in_flight) < window:
                        if pending_submit:
                            unit, attempt = pending_submit.pop(0)
                        elif not (exhausted or stop_stream):
                            try:
                                unit, attempt = next(units), 0
                            except StopIteration:
                                exhausted = True
                                continue
                            except VerificationBudgetExceeded as exc:
                                interrupt(exc)
                                break
                        else:
                            break
                        if not launch(unit, attempt):
                            break

            if pool is not None and in_flight:
                done, _ = wait(
                    in_flight, timeout=0.1, return_when=FIRST_COMPLETED
                )
                broke = False
                for fut in sorted(
                    done, key=lambda f: in_flight[f].unit.cursor
                ):
                    flight = in_flight.pop(fut)
                    if fut.cancelled():
                        out.pending.append(flight.unit.cursor)
                        continue
                    try:
                        result = fut.result()
                    except BrokenProcessPool:
                        # every in-flight future died with the pool
                        in_flight[fut] = flight
                        broke = True
                        break
                    except Exception as exc:
                        handle_failure(flight.unit, flight.attempt, exc)
                        continue
                    handle_result(flight.unit, result)
                if broke:
                    on_pool_break()
                else:
                    if not done and not halt:
                        # Idle tick: let the parent deadline fire even
                        # when no unit completed in this window.
                        try:
                            gov.check_deadline()
                        except VerificationBudgetExceeded as exc:
                            interrupt(exc)
                    scan_timeouts()
            elif pool is None and not halt:
                # in-process fallback: the pool could not be (re)built;
                # run one unit per iteration with the same per-unit
                # budget semantics a worker would have used
                item = None
                if probation:
                    item = probation.pop(0)
                elif pending_submit:
                    item = pending_submit.pop(0)
                elif not (exhausted or stop_stream):
                    try:
                        item = (next(units), 0)
                    except StopIteration:
                        exhausted = True
                    except VerificationBudgetExceeded as exc:
                        interrupt(exc)
                if item is not None:
                    unit, attempt = item
                    sup.announce_fault(tracer, "unit", unit.cursor, attempt)
                    try:
                        result = _execute_unit(
                            spec, unit, gov.remaining_time(), seq_cache,
                            injector=sup.local_injector(), attempt=attempt,
                        )
                    except Exception as exc:
                        handle_failure(unit, attempt, exc)
                    else:
                        handle_result(unit, result)

            if best is not None:
                # Units beyond the best violation cannot change the
                # answer: cancel what hasn't started, stop submitting,
                # and only await the units below the best cursor.
                stop_stream = True
                for fut, flight in list(in_flight.items()):
                    if flight.unit.cursor > best.cursor and fut.cancel():
                        del in_flight[fut]
                pending_submit[:] = [
                    (u, a) for (u, a) in pending_submit
                    if u.cursor < best.cursor
                ]
                retry_q[:] = [
                    e for e in retry_q if e[1].cursor < best.cursor
                ]
                probation[:] = [
                    (u, a) for (u, a) in probation if u.cursor < best.cursor
                ]
            if halt and best is None:
                # Interrupted: anything not yet started is pending; the
                # already-running units drain (their own deadline mirrors
                # the parent's, so this does not hang).
                for fut, flight in list(in_flight.items()):
                    if fut.cancel():
                        out.pending.append(flight.unit.cursor)
                        del in_flight[fut]

            if (
                not in_flight and not pending_submit and not probation
                and retry_q and not halt
            ):
                # nothing runnable until the earliest backoff elapses
                earliest = min(e[0] for e in retry_q)
                _SLEEP(min(0.1, max(0.0, earliest - _MONOTONIC())))

            if (
                not in_flight and not retry_q and not probation
                and not pending_submit
                and (exhausted or stop_stream or halt)
            ):
                break
    finally:
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    if best is not None:
        below = sorted(c for c in set(out.pending) if c < best.cursor)
        if below:
            # A unit below the winning violation was itself interrupted:
            # the sequential order would have stopped there before ever
            # reaching this violation.  Resolve INCONCLUSIVE at that
            # frontier so the verdict stays worker-count-independent;
            # the violation is rediscovered on resume.
            out.pending = below
            for cursor, unit_stats in stats_by_cursor.items():
                merge_unit_stats(out.unit_stats, unit_stats)
            flush_events(None)
            if out.interrupted is None:  # pragma: no cover - defensive
                out.interrupted = VerificationBudgetExceeded(
                    "a unit below the first violation was interrupted",
                    limit="budget",
                )
            return out
        out.violation = best
        out.interrupted = None
        out.pending = []
        for cursor, unit_stats in stats_by_cursor.items():
            if cursor <= best.cursor:
                merge_unit_stats(out.unit_stats, unit_stats)
        flush_events(best.cursor)
        stream.clamp_db_stats(best.db_index)
        return out
    for cursor, unit_stats in stats_by_cursor.items():
        merge_unit_stats(out.unit_stats, unit_stats)
    flush_events(None)
    if out.interrupted is not None:
        if not out.pending:
            out.pending = [stream.cursor]
        else:
            out.pending = sorted(set(out.pending))
        sup.write_checkpoint(tracer, out, incomplete=out.pending)
    return out
