"""Parallel verification: work units over the (database, sigma) enumeration.

Every decision procedure in this package has the same outer shape — a
deterministic enumeration of candidate databases (and, for the
linear-time procedures, input-constant interpretations sigma within
each database) with an *independent* model check per pair.  That
independence is what the paper's operational strategy (and the WAVE
verifier after it) exploits, and it makes the enumeration embarrassingly
parallel: this module turns each (db_index, sigma_index) pair into a
:class:`WorkUnit` and runs the units either in-process (the classic
sequential loop) or on a :class:`~concurrent.futures.ProcessPoolExecutor`
selected with ``workers=N``.

Guarantees, regardless of worker count:

- **Deterministic verdicts.**  A violated property always reports the
  violation with the *lowest* (db_index, sigma_index) cursor, not the
  first one a worker happened to finish — so ``workers=1`` and
  ``workers=8`` return the same verdict, the same counterexample
  database and the same counterexample cursor.
- **Early cancellation.**  Once a violation at cursor *c* is confirmed,
  units beyond *c* are cancelled and no new units are submitted; units
  below *c* are still awaited (one of them could hold an even lower
  violation).
- **Budget integration.**  The parent governor keeps charging the
  database cap and the wall-clock deadline at submission time; workers
  enforce the per-pair caps and the remaining deadline locally, and the
  parent absorbs their counters as units complete so global caps and
  aggregate stats stay meaningful.
- **Resumable frontier.**  On interruption the checkpoint records the
  lowest incomplete cursor plus the out-of-order completions beyond it
  (``extra["completed_units"]``), so a resume — sequential or parallel —
  re-runs exactly the incomplete units.
- **Deterministic traces.**  When a :mod:`repro.obs` tracer is active,
  workers collect their unit's events locally and ship the batch back
  with the :class:`UnitOutcome`; the parent buffers batches and merges
  them into its tracer in **cursor order**, under the same
  prefix filter as the stats aggregation — so the traced unit set is
  identical at every worker count, and per-process timestamps stay
  monotonic in file order.

The streaming is lazy end-to-end: databases are pulled from the
canonical enumeration one at a time and shipped to workers in a bounded
submission window, never materialized as a list.

Workers are spawned per verification call with the task's specification
pickled once into each worker (service, property, precompiled Büchi
automaton, unit budget caps) — the per-unit messages carry only the
database and sigma.  ``REPRO_WORKERS`` in the environment supplies a
default worker count for entry points called without ``workers=``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.obs import NULL_TRACER, CollectingTracer, TraceEvent, Tracer
from repro.verifier.budget import Budget, Checkpoint
from repro.verifier.results import VerificationBudgetExceeded

__all__ = [
    "WorkUnit",
    "UnitOutcome",
    "TaskSpec",
    "UnitStream",
    "EnumerationOutcome",
    "run_units",
    "unit_checker",
    "resolve_workers",
    "frontier_checkpoint",
    "merge_unit_stats",
    "CLEAN",
    "VIOLATED",
    "BUDGET",
]

CLEAN = "clean"
VIOLATED = "violated"
BUDGET = "budget"

#: Stats keys aggregated by max (structure sizes); everything else sums.
_MAX_KEYS = frozenset({"buchi_states", "kripke_states"})


def resolve_workers(workers: int | None) -> int:
    """The effective worker count for one verification call.

    ``None`` falls back to the ``REPRO_WORKERS`` environment variable
    (production deployments set it once instead of threading a parameter
    through every call site), and finally to 1 — the sequential loop.
    """
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise ValueError(
                    f"REPRO_WORKERS must be an integer, got {raw!r}"
                ) from None
    if workers is None:
        return 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


@dataclass(frozen=True)
class WorkUnit:
    """One independent model check: a (database, sigma) pair with its cursor."""

    db_index: int
    sigma_index: int
    database: Any
    sigma: dict | None  # None for the per-database procedures

    @property
    def cursor(self) -> tuple[int, int]:
        return (self.db_index, self.sigma_index)


@dataclass
class UnitOutcome:
    """What one work unit reported back.

    ``status`` is ``clean`` (no violation), ``violated`` (``detail``
    carries the procedure-specific counterexample payload), or
    ``budget`` (the unit's own governor struck; ``limit``/``message``
    say which, ``stats`` holds the partial counters).  ``events`` is the
    unit's trace-event batch (empty unless the task spec is traced):
    pool workers collect locally and ship the batch back here, and the
    parent merges batches into its tracer in cursor order.
    """

    db_index: int
    sigma_index: int
    status: str
    stats: dict = field(default_factory=dict)
    limit: str = ""
    message: str = ""
    detail: Any = None
    events: list[TraceEvent] = field(default_factory=list)

    @property
    def cursor(self) -> tuple[int, int]:
        return (self.db_index, self.sigma_index)


@dataclass(frozen=True)
class TaskSpec:
    """Picklable description of the per-unit work of one entry point.

    ``procedure`` selects the registered checker; ``payload`` carries
    the procedure's own data (sentence, precompiled automaton, formula,
    flags); ``unit_limits`` are the caps each worker installs in its
    local :class:`Budget` (the per-pair/per-structure caps — the global
    caps stay with the parent governor).  ``traced`` tells workers to
    collect trace events per unit and ship them back with the outcome;
    when False (the default) workers run with the null tracer.
    """

    procedure: str
    service: Any
    payload: Mapping[str, Any]
    unit_limits: Mapping[str, Any]
    traced: bool = False

    def make_unit_budget(self, timeout_s: float | None) -> Budget:
        return Budget(
            max_snapshots=self.unit_limits.get("max_snapshots"),
            max_states=self.unit_limits.get("max_states"),
            max_valuations=self.unit_limits.get("max_valuations"),
            timeout_s=timeout_s,
        ).start()


# -- checker registry -------------------------------------------------------

#: procedure name -> checker(spec, unit, budget, cache) -> UnitOutcome.
#: Checkers must be module-level (picklable by reference) and raise
#: VerificationBudgetExceeded when their governor strikes; the backends
#: decide whether that propagates (sequential) or becomes a BUDGET
#: outcome (pool workers).
_CHECKERS: dict[str, Callable[[TaskSpec, WorkUnit, Budget, dict], UnitOutcome]] = {}


def unit_checker(procedure: str):
    """Register the per-unit checker of one decision procedure."""

    def register(fn):
        _CHECKERS[procedure] = fn
        return fn

    return register


def _load_checkers() -> None:
    """Import every module that registers a checker (worker processes)."""
    import repro.verifier.branching  # noqa: F401
    import repro.verifier.errors  # noqa: F401
    import repro.verifier.linear  # noqa: F401
    import repro.verifier.search  # noqa: F401


# -- worker-side plumbing ---------------------------------------------------

_WORKER_SPEC: TaskSpec | None = None
_WORKER_CACHE: dict | None = None


def _init_worker(spec: TaskSpec) -> None:
    global _WORKER_SPEC, _WORKER_CACHE
    _load_checkers()
    _WORKER_SPEC = spec
    _WORKER_CACHE = {}
    # Compile the service's rule plans once per worker per TaskSpec (the
    # spec's service is unpickled exactly once per worker), so units never
    # pay plan-compile time.  No-op when compilation is toggled off.
    from repro.service.compiled import warm_service_plans

    warm_service_plans(spec.service)


def _pool_check(unit: WorkUnit, timeout_s: float | None) -> UnitOutcome:
    """Run one unit in a worker: local budget, shared per-worker cache."""
    spec = _WORKER_SPEC
    assert spec is not None, "worker used before initialization"
    gov = spec.make_unit_budget(timeout_s)
    tracer: Tracer = CollectingTracer() if spec.traced else NULL_TRACER
    gov.tracer = tracer
    started = time.monotonic()
    if tracer.active:
        tracer.emit("unit.start", cursor=unit.cursor)
    try:
        outcome = _CHECKERS[spec.procedure](spec, unit, gov, _WORKER_CACHE)
    except VerificationBudgetExceeded as exc:
        stats = dict(exc.stats)
        stats.setdefault("snapshots_explored", gov.snapshots_total)
        stats.setdefault("valuations_checked", gov.valuations)
        outcome = UnitOutcome(
            unit.db_index,
            unit.sigma_index,
            BUDGET,
            stats=stats,
            limit=exc.limit,
            message=str(exc),
        )
    if tracer.active:
        tracer.emit(
            "unit.finish", cursor=unit.cursor,
            dur=time.monotonic() - started, status=outcome.status,
        )
        outcome.events = tracer.events
    return outcome


# -- the unit stream --------------------------------------------------------

class UnitStream:
    """Lazy, resumable iterator of pending work units.

    Wraps the (streaming) database enumeration, applies the resume
    cursor and the completed-units frontier, charges the parent governor
    per database, and keeps ``cursor`` pointed at the unit most recently
    yielded (or the database being entered) — the position an
    interruption should checkpoint.
    """

    def __init__(
        self,
        databases: Iterable,
        gov: Budget,
        stats: dict,
        *,
        sigma_fn: Callable[[Any], Iterable[Mapping[str, Any]]] | None = None,
        resume: Checkpoint | None = None,
        on_database: Callable[[Any], None] | None = None,
    ) -> None:
        self._databases = databases
        self._gov = gov
        self._stats = stats
        self._sigma_fn = sigma_fn
        self._on_database = on_database
        self._skip_db = resume.db_index if resume is not None else 0
        self._skip_sigma = resume.sigma_index if resume is not None else 0
        self._done = resume.completed_units() if resume is not None else frozenset()
        self._db_marks: dict[int, tuple[int, int]] = {}
        self.cursor: tuple[int, int] = (self._skip_db, self._skip_sigma)

    def __iter__(self) -> Iterator[WorkUnit]:
        tracer = self._gov.tracer
        for db_index, db in enumerate(self._databases):
            if db_index < self._skip_db or (
                self._sigma_fn is None and (db_index, 0) in self._done
            ):
                self._stats["databases_skipped"] += 1
                continue
            self.cursor = (db_index, 0)
            self._gov.charge_database()
            self._stats["databases_checked"] += 1
            self._db_marks[db_index] = (
                self._stats["databases_checked"],
                self._stats["databases_skipped"],
            )
            if tracer.active:
                tracer.emit(
                    "database.enumerated", cursor=(db_index, 0),
                    db_index=db_index, domain=len(db.domain),
                )
            if self._on_database is not None:
                self._on_database(db)
            if self._sigma_fn is None:
                yield WorkUnit(db_index, 0, db, None)
                continue
            n_sigmas = 0
            for sigma_index, sigma in enumerate(self._sigma_fn(db)):
                n_sigmas += 1
                if db_index == self._skip_db and sigma_index < self._skip_sigma:
                    continue
                if (db_index, sigma_index) in self._done:
                    continue
                self.cursor = (db_index, sigma_index)
                yield WorkUnit(db_index, sigma_index, db, dict(sigma))
            if tracer.active:
                tracer.emit(
                    "sigma.batch", cursor=(db_index, 0), count=n_sigmas
                )

    def clamp_db_stats(self, db_index: int) -> None:
        """Rewind the database counters to their values when ``db_index``
        was entered.

        The pool's submission window pulls this stream ahead of the
        units actually resolved, so on a violation the counters must be
        reset to the prefix a sequential run would have charged before
        stopping at that database.
        """
        mark = self._db_marks.get(db_index)
        if mark is not None:
            self._stats["databases_checked"] = mark[0]
            self._stats["databases_skipped"] = mark[1]


# -- outcome aggregation ----------------------------------------------------

def merge_unit_stats(agg: dict, unit_stats: Mapping[str, Any]) -> None:
    """Fold one unit's counters into the aggregate (sums; max for sizes)."""
    for key, value in unit_stats.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        if key in _MAX_KEYS:
            agg[key] = max(agg.get(key, 0), value)
        else:
            agg[key] = agg.get(key, 0) + value


@dataclass
class EnumerationOutcome:
    """How one enumeration run ended, backend-independent.

    Exactly one of three shapes: a ``violation`` (lowest cursor), an
    ``interrupted`` budget exception with the ``pending`` frontier and
    ``completed`` out-of-order cursors, or neither (exhausted — HOLDS).
    """

    violation: UnitOutcome | None = None
    interrupted: VerificationBudgetExceeded | None = None
    pending: list[tuple[int, int]] = field(default_factory=list)
    completed: list[tuple[int, int]] = field(default_factory=list)
    unit_stats: dict = field(default_factory=dict)


def frontier_checkpoint(
    outcome: EnumerationOutcome,
    *,
    procedure: str,
    property_name: str = "",
    domain_size: int | None = None,
    up_to_iso: bool | None = None,
    workers: int | None = None,
    resume: Checkpoint | None = None,
    extra: Mapping[str, Any] | None = None,
) -> Checkpoint:
    """The merged resumable checkpoint of an interrupted enumeration.

    The cursor is the lowest incomplete unit; completions beyond it
    (out-of-order parallel finishes, plus any carried over from the
    checkpoint being resumed) are recorded so the next run skips them.
    """
    pending = sorted(outcome.pending)
    cursor = pending[0] if pending else (0, 0)
    done: set[tuple[int, int]] = set(outcome.completed)
    if resume is not None:
        done |= resume.completed_units()
    ahead = sorted(c for c in done if c > cursor)
    payload = dict(extra or {})
    if ahead:
        payload["completed_units"] = [list(c) for c in ahead]
    return Checkpoint(
        procedure=procedure,
        property_name=property_name,
        db_index=cursor[0],
        sigma_index=cursor[1],
        domain_size=domain_size,
        up_to_iso=up_to_iso,
        workers=workers,
        extra=payload,
    )


# -- backends ---------------------------------------------------------------

def run_units(
    spec: TaskSpec,
    stream: UnitStream,
    gov: Budget,
    workers: int,
) -> EnumerationOutcome:
    """Run every pending unit; first confirmed lowest-cursor violation wins.

    ``workers <= 1`` is the classic sequential loop sharing the parent
    governor (identical charging order to the pre-parallel verifier);
    ``workers > 1`` fans units out to a process pool.
    """
    if workers <= 1:
        return _run_sequential(spec, stream, gov)
    return _run_pool(spec, stream, gov, workers)


def _run_sequential(
    spec: TaskSpec, stream: UnitStream, gov: Budget
) -> EnumerationOutcome:
    """The classic in-process loop; trace events stream live, in cursor
    order, straight into the parent tracer (no batching needed — units
    complete in the order the stream yields them)."""
    checker = _CHECKERS[spec.procedure]
    tracer = gov.tracer
    cache: dict = {}
    out = EnumerationOutcome()
    try:
        for unit in stream:
            if tracer.active:
                tracer.emit("unit.start", cursor=unit.cursor)
                started = time.monotonic()
            try:
                result = checker(spec, unit, gov, cache)
            except VerificationBudgetExceeded:
                if tracer.active:
                    tracer.emit(
                        "unit.finish", cursor=unit.cursor,
                        dur=time.monotonic() - started, status=BUDGET,
                    )
                raise
            if tracer.active:
                tracer.emit(
                    "unit.finish", cursor=unit.cursor,
                    dur=time.monotonic() - started, status=result.status,
                )
            if result.status == VIOLATED:
                merge_unit_stats(out.unit_stats, result.stats)
                out.violation = result
                return out
            out.completed.append(unit.cursor)
            merge_unit_stats(out.unit_stats, result.stats)
    except VerificationBudgetExceeded as exc:
        out.interrupted = exc
        out.pending = [stream.cursor]
    return out


def _run_pool(
    spec: TaskSpec, stream: UnitStream, gov: Budget, workers: int
) -> EnumerationOutcome:
    out = EnumerationOutcome()
    window = max(2 * workers, workers + 2)
    units = iter(stream)
    exhausted = False
    stop_submitting = False
    in_flight: dict[Future, WorkUnit] = {}
    best: UnitOutcome | None = None
    # Per-unit stats, folded into out.unit_stats only once the verdict
    # is known: on a violation the aggregate must cover exactly the
    # prefix of units at or below the winning cursor (what a sequential
    # run charges), not whatever speculative units happened to finish
    # before cancellation — stats stay worker-count-independent.
    stats_by_cursor: dict[tuple[int, int], Mapping[str, Any]] = {}
    # Trace-event batches shipped back by workers, buffered until the
    # verdict is known and then merged into the parent tracer in cursor
    # order under the same filter as the stats — the trace covers the
    # same unit set at every worker count.
    events_by_cursor: dict[tuple[int, int], list[TraceEvent]] = {}

    def flush_events(limit_cursor: tuple[int, int] | None) -> None:
        if not gov.tracer.active:
            return
        for cursor in sorted(events_by_cursor):
            if limit_cursor is not None and cursor > limit_cursor:
                continue
            for event in events_by_cursor[cursor]:
                gov.tracer.emit_event(event)

    def interrupt(exc: VerificationBudgetExceeded) -> None:
        nonlocal stop_submitting
        if out.interrupted is None:
            out.interrupted = exc
        stop_submitting = True

    with ProcessPoolExecutor(
        max_workers=workers, initializer=_init_worker, initargs=(spec,)
    ) as pool:
        while True:
            # Keep the submission window full.  The stream itself can
            # raise (database cap, deadline during enumeration) — that
            # interrupts submission but outstanding units still drain.
            while not stop_submitting and not exhausted and len(in_flight) < window:
                try:
                    unit = next(units)
                except StopIteration:
                    exhausted = True
                    break
                except VerificationBudgetExceeded as exc:
                    interrupt(exc)
                    break
                fut = pool.submit(_pool_check, unit, gov.remaining_time())
                in_flight[fut] = unit

            if not in_flight:
                break

            done, _ = wait(
                in_flight, timeout=0.1, return_when=FIRST_COMPLETED
            )
            for fut in done:
                unit = in_flight.pop(fut)
                if fut.cancelled():
                    out.pending.append(unit.cursor)
                    continue
                result = fut.result()
                if result.events:
                    events_by_cursor[unit.cursor] = result.events
                if result.status == BUDGET:
                    out.pending.append(unit.cursor)
                    stats_by_cursor[unit.cursor] = result.stats
                    interrupt(
                        VerificationBudgetExceeded(
                            result.message,
                            limit=result.limit,
                            stats=result.stats,
                        )
                    )
                    continue
                out.completed.append(unit.cursor)
                stats_by_cursor[unit.cursor] = result.stats
                if result.status == VIOLATED and (
                    best is None or result.cursor < best.cursor
                ):
                    best = result
                try:
                    gov.absorb(result.stats)
                except VerificationBudgetExceeded as exc:
                    interrupt(exc)
            if best is not None:
                # Units beyond the best violation cannot change the
                # answer: cancel what hasn't started, stop submitting,
                # and only await the units below the best cursor.
                stop_submitting = True
                for fut, unit in list(in_flight.items()):
                    if unit.cursor > best.cursor and fut.cancel():
                        del in_flight[fut]
            if not done and not stop_submitting:
                # Idle tick: let the parent deadline fire even when no
                # unit completed in this window.
                try:
                    gov.check_deadline()
                except VerificationBudgetExceeded as exc:
                    interrupt(exc)
            if stop_submitting and best is None:
                # Interrupted: anything not yet started is pending; the
                # already-running units drain (their own deadline mirrors
                # the parent's, so this does not hang).
                for fut, unit in list(in_flight.items()):
                    if fut.cancel():
                        out.pending.append(unit.cursor)
                        del in_flight[fut]

    if best is not None:
        below = sorted(c for c in set(out.pending) if c < best.cursor)
        if below:
            # A unit below the winning violation was itself interrupted:
            # the sequential order would have stopped there before ever
            # reaching this violation.  Resolve INCONCLUSIVE at that
            # frontier so the verdict stays worker-count-independent;
            # the violation is rediscovered on resume.
            out.pending = below
            for cursor, unit_stats in stats_by_cursor.items():
                merge_unit_stats(out.unit_stats, unit_stats)
            flush_events(None)
            if out.interrupted is None:  # pragma: no cover - defensive
                out.interrupted = VerificationBudgetExceeded(
                    "a unit below the first violation was interrupted",
                    limit="budget",
                )
            return out
        out.violation = best
        out.interrupted = None
        out.pending = []
        for cursor, unit_stats in stats_by_cursor.items():
            if cursor <= best.cursor:
                merge_unit_stats(out.unit_stats, unit_stats)
        flush_events(best.cursor)
        stream.clamp_db_stats(best.db_index)
        return out
    for cursor, unit_stats in stats_by_cursor.items():
        merge_unit_stats(out.unit_stats, unit_stats)
    flush_events(None)
    if out.interrupted is not None:
        if not out.pending:
            out.pending = [stream.cursor]
        else:
            out.pending = sorted(set(out.pending))
    return out
