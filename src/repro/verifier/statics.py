"""The verifier's front door.

:func:`verify` takes a Web service and a property — an
:class:`~repro.ltl.ltlfo.LTLFOSentence` or a CTL(*)
:class:`~repro.ctl.syntax.StateFormula` — classifies the pair against
the paper's decidability map, and dispatches to the right decision
procedure.  Instances outside every decidable class are refused with an
:class:`~repro.verifier.results.UndecidableInstanceError` citing the
relevant undecidability theorem; pass ``force=True`` to run the bounded
search anyway (sound for violations found, no completeness claim).
"""

from __future__ import annotations

from typing import Any

from repro.ctl.syntax import StateFormula
from repro.ltl.ltlfo import LTLFOSentence, check_ltlfo_input_bounded
from repro.obs import resolve_tracer
from repro.service.classify import ServiceClass, classify
from repro.service.webservice import WebService
from repro.verifier.branching import verify_ctl, verify_fully_propositional
from repro.verifier.linear import verify_ltlfo
from repro.verifier.results import UndecidableInstanceError, VerificationResult
from repro.verifier.search import verify_input_driven_search

#: accepted values of verify()'s ``lint=`` option
_LINT_MODES = ("off", "warn", "strict")


def verify(
    service: WebService,
    prop: "LTLFOSentence | StateFormula",
    force: bool = False,
    **options: Any,
) -> VerificationResult:
    """Verify a temporal property of a Web service.

    Dispatch:

    - LTL-FO sentence + input-bounded service → Theorem 3.5 procedure;
    - CTL(*) formula + fully propositional service → Theorem 4.6;
    - CTL(*) formula + propositional service → Theorem 4.4;
    - CTL(*) formula + input-driven-search service → Theorem 4.9;
    - anything else → refusal citing Theorem 3.7/3.8/3.9/4.2, unless
      ``force=True``.

    ``options`` are forwarded to the underlying procedure
    (``databases=``, ``domain_size=``, ``budget=``, ``timeout_s=``,
    ``strict=``, ``resume=``, ``workers=``, ``tracer=``, ...).  Every
    procedure shares the
    resource-governor semantics of :mod:`repro.verifier.budget`: with
    the default non-strict settings a blown budget never raises — it
    returns a ``Verdict.INCONCLUSIVE`` result with partial stats, a
    coverage summary, and (where the enumeration has a cursor) a
    resumable checkpoint.

    An option the dispatched procedure does not accept raises
    ``TypeError`` naming it — nothing is silently dropped.  For a fully
    propositional service the default route is the single-structure
    Theorem 4.6 procedure; passing ``databases=`` or ``domain_size=``
    explicitly requests the Theorem 4.4 enumeration instead, and the
    returned result's ``procedure`` field records which one actually ran.

    ``lint=`` controls the static pre-flight (:mod:`repro.lint`), which
    runs *before* any decision procedure — in particular before any
    database is enumerated:

    - ``"warn"`` (default) — run the linter, emit one ``lint.finding``
      trace event per diagnostic, attach the findings to
      ``result.diagnostics``, and proceed;
    - ``"strict"`` — additionally refuse with
      :class:`~repro.lint.diagnostics.SpecLintError` when the linter
      finds error-severity diagnostics (a statically empty input rule,
      a protocol violation that always fires, ...) instead of spending
      the verification budget on a broken spec;
    - ``"off"`` — skip the pre-flight entirely.
    """
    diagnostics = lint_preflight(service, options)
    result = _dispatch(service, prop, force, options)
    if diagnostics:
        result.diagnostics = list(diagnostics)
    return result


def lint_preflight(service: WebService, options: dict[str, Any]) -> list:
    """Pop ``lint=`` from ``options`` and run the static pre-flight.

    Shared by :func:`verify` and the CLI's ``--error-free`` path (which
    calls :func:`~repro.verifier.errors.verify_error_free` directly):
    the pre-flight runs before *any* decision procedure, whichever door
    the caller came through.  Returns the diagnostics to attach to the
    result; raises :class:`~repro.lint.diagnostics.SpecLintError` under
    ``lint="strict"`` when error-severity findings exist.
    """
    lint_mode = options.pop("lint", "warn")
    if lint_mode not in _LINT_MODES:
        raise ValueError(
            f"lint={lint_mode!r} is not one of {', '.join(_LINT_MODES)}"
        )
    diagnostics = []
    if lint_mode != "off":
        from repro.lint import SpecLintError, lint_service

        report = lint_service(service)
        diagnostics = report.diagnostics
        tracer = resolve_tracer(options.get("tracer"))
        if tracer.active:
            for d in diagnostics:
                tracer.emit(
                    "lint.finding",
                    code=d.code,
                    severity=d.severity.value,
                    location=d.location,
                    message=d.message,
                )
            _emit_analysis_facts(tracer, service)
        if lint_mode == "strict" and report.has_errors:
            raise SpecLintError(report)
    return diagnostics


def _emit_analysis_facts(tracer, service: WebService) -> None:
    """Emit one ``analysis.fact`` event per whole-service dataflow fact
    family (see :mod:`repro.analysis.dataflow`), so traced verifications
    record what the fixpoint concluded about the instance they ran on."""
    from repro.analysis.dataflow import static_facts

    facts = static_facts(service)
    tracer.emit(
        "analysis.fact",
        fact="reachability",
        reachable=len(facts.reachable),
        syntactic=len(facts.syntactic_reachable),
        pages=len(facts.pages),
        unreachable=sorted(facts.dead_pages),
    )
    tracer.emit(
        "analysis.fact",
        fact="input_constants",
        always_error_pages=sorted(facts.always_error),
        unset_reads=len(facts.unset_reads),
    )
    tracer.emit(
        "analysis.fact",
        fact="relation_liveness",
        empty_state_relations=sorted(facts.empty_state_relations),
        write_only=sorted(facts.write_only),
    )
    tracer.emit(
        "analysis.fact",
        fact="rule_firability",
        dead_rules=facts.dead_rule_count(),
        iterations=facts.iterations,
    )


def _dispatch(
    service: WebService,
    prop: "LTLFOSentence | StateFormula",
    force: bool,
    options: dict[str, Any],
) -> VerificationResult:
    if isinstance(prop, LTLFOSentence):
        return verify_ltlfo(
            service, prop, check_restrictions=not force, **options
        )
    if isinstance(prop, StateFormula):
        report = classify(service)
        if report.is_in(ServiceClass.FULLY_PROPOSITIONAL) and "databases" not in options and "domain_size" not in options:
            # Options the Theorem 4.6 fast path does not accept raise a
            # coded RunConfigError inside the procedure (with the
            # enumeration hint appended) — nothing is silently dropped.
            return verify_fully_propositional(
                service, prop, check_restrictions=not force, **options
            )
        if report.is_in(ServiceClass.PROPOSITIONAL):
            return verify_ctl(
                service, prop, check_restrictions=not force, **options
            )
        if report.is_in(ServiceClass.INPUT_DRIVEN_SEARCH):
            return verify_input_driven_search(
                service, prop, check_restrictions=not force, **options
            )
        if force:
            return verify_ctl(service, prop, check_restrictions=False, **options)
        raise UndecidableInstanceError(
            report.why_not(ServiceClass.PROPOSITIONAL)
            + report.why_not(ServiceClass.INPUT_DRIVEN_SEARCH),
            "Theorem 4.2 (input-bounded CTL-FO verification is undecidable)",
        )
    raise TypeError(
        f"unsupported property type {type(prop).__name__}: pass an "
        "LTLFOSentence or a CTL(*) StateFormula"
    )


def decidability_report(
    service: WebService,
    prop: "LTLFOSentence | StateFormula | None" = None,
) -> str:
    """Human-readable report of which theorems apply to the instance."""
    report = classify(service)
    lines = [report.describe()]
    if isinstance(prop, LTLFOSentence):
        ib = check_ltlfo_input_bounded(prop, service.schema, service.page_names)
        mark = "yes" if ib.ok else "no "
        lines.append("property classification:")
        lines.append(f"  [{mark}] input-bounded LTL-FO sentence")
        for reason in ib.reasons[:4]:
            lines.append(f"        - {reason}")
        if ib.ok and report.is_in(ServiceClass.INPUT_BOUNDED):
            lines.append(
                "=> decidable: Theorem 3.5 (PSPACE-complete for fixed arity)"
            )
        else:
            lines.append("=> outside Theorem 3.5; undecidable in general (§3)")
    elif isinstance(prop, StateFormula):
        from repro.ctl.syntax import is_ctl

        fragment = "CTL" if is_ctl(prop) else "CTL*"
        lines.append(f"property: a {fragment} state formula")
        if report.is_in(ServiceClass.FULLY_PROPOSITIONAL):
            lines.append("=> decidable: Theorem 4.6 (PSPACE)")
        elif report.is_in(ServiceClass.PROPOSITIONAL):
            bound = "co-NEXPTIME" if fragment == "CTL" else "EXPSPACE"
            lines.append(f"=> decidable: Theorem 4.4 ({bound})")
        elif report.is_in(ServiceClass.INPUT_DRIVEN_SEARCH):
            bound = "EXPTIME" if fragment == "CTL" else "2-EXPTIME"
            lines.append(f"=> decidable: Theorem 4.9 ({bound})")
        else:
            lines.append(
                "=> undecidable in general: Theorem 4.2 (even one path "
                "quantifier alternation encodes ∃*∀* FO validity)"
            )
    return "\n".join(lines)
