"""The resource governor: bounded, interruptible verification.

Every decision procedure in this package is worst-case PSPACE/EXPSPACE
(Theorems 3.5, 4.4, 4.6, 4.9), so production callers need every
verification call to be *bounded* — in explored snapshots, candidate
databases, grounded valuations, Kripke states, and wall-clock time —
and to report how far it got when a bound strikes.  One
:class:`Budget` object carries all the caps and is checked
cooperatively at exploration steps by all four decision procedures
(:mod:`~repro.verifier.linear`, :mod:`~repro.verifier.errors`,
:mod:`~repro.verifier.branching`, :mod:`~repro.verifier.search`).

On exhaustion the governor raises
:class:`~repro.verifier.results.VerificationBudgetExceeded` carrying the
name of the exceeded limit; the public entry points catch it and — in
the default non-strict mode — degrade gracefully to a
``Verdict.INCONCLUSIVE`` :class:`~repro.verifier.results.VerificationResult`
with the partial stats, a human-readable coverage summary, and a
serializable :class:`Checkpoint` from which a follow-up call can resume
the database/sigma enumeration instead of restarting from scratch
(`repro.io.save_checkpoint` / `load_checkpoint` round-trip it).

INCONCLUSIVE is *sound for violations*: any counterexample found before
exhaustion is genuine, but nothing is claimed about the unexplored
space — resuming (or raising the budget) is the only way to turn an
INCONCLUSIVE into a HOLDS.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.obs import NULL_TRACER, Tracer
from repro.verifier.results import (
    Verdict,
    VerificationBudgetExceeded,
    VerificationResult,
)

__all__ = [
    "Budget",
    "Checkpoint",
    "CheckpointFormatError",
    "CheckpointMismatchError",
    "coverage_summary",
]


class CheckpointFormatError(ValueError):
    """A checkpoint file/dict is malformed; the message names the field.

    Raised instead of letting ``KeyError``/``TypeError``/
    ``JSONDecodeError`` escape from :meth:`Checkpoint.from_dict` or the
    :mod:`repro.io` loaders: a truncated or hand-edited resume file is
    an *expected* operational condition (a kill mid-write, a copy that
    didn't finish), and the operator fixing it needs the field name, not
    a traceback.  The CLI maps it to the usage exit code (2).
    """

    def __init__(self, message: str, *, field: str = "") -> None:
        super().__init__(message)
        self.field = field


class CheckpointMismatchError(ValueError):
    """A checkpoint was produced under different enumeration parameters.

    The database/sigma cursors in a :class:`Checkpoint` identify
    positions in a *specific* deterministic enumeration; resuming with a
    different ``domain_size``/``up_to_iso``/``workers`` would silently
    skip a prefix of a *different* enumeration, leaving part of the
    search space unverified.  The entry points therefore refuse the
    resume instead (mirroring the CLI's procedure/property refusal).
    """


@dataclass
class Checkpoint:
    """Resumable cursor into a verification run's enumeration.

    The database/sigma enumerations are deterministic for fixed
    parameters, so an index pair identifies exactly where a budget ran
    out: ``db_index`` is the candidate database being processed when the
    governor struck (everything before it is fully checked) and
    ``sigma_index`` the input-constant interpretation within it.
    Resuming re-verifies that pair from scratch and continues — the
    union of the interrupted prefix and the resumed suffix covers the
    same space as one unbounded run.

    Under parallel execution units complete out of order, so the cursor
    alone is not the whole story: ``extra["completed_units"]`` lists the
    ``[db_index, sigma_index]`` cursors *beyond* the cursor that had
    already completed when the run was interrupted (the complement of
    the frontier).  Resuming skips those as well.

    ``domain_size``, ``up_to_iso`` and ``workers`` record the
    enumeration parameters of the producing run; the cursors are only
    meaningful under the same parameters, and
    :meth:`ensure_compatible` refuses a resume that changes them.
    """

    procedure: str
    property_name: str = ""
    db_index: int = 0
    sigma_index: int = 0
    domain_size: int | None = None
    up_to_iso: bool | None = None
    workers: int | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "procedure": self.procedure,
            "property_name": self.property_name,
            "db_index": self.db_index,
            "sigma_index": self.sigma_index,
            "domain_size": self.domain_size,
            "up_to_iso": self.up_to_iso,
            "workers": self.workers,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Checkpoint":
        """Rebuild a checkpoint, validating every field it reads.

        Raises :class:`CheckpointFormatError` naming the offending field
        on missing keys or wrong types — never ``KeyError``/``TypeError``
        — so a truncated or hand-edited resume file turns into an
        actionable refusal instead of a traceback.
        """
        if not isinstance(data, Mapping):
            raise CheckpointFormatError(
                f"checkpoint must be a JSON object, got {type(data).__name__}",
                field="",
            )
        procedure = data.get("procedure")
        if not isinstance(procedure, str) or not procedure:
            raise CheckpointFormatError(
                "checkpoint field 'procedure' is missing or not a "
                f"non-empty string (got {procedure!r}); was the file "
                "truncated?",
                field="procedure",
            )
        property_name = data.get("property_name", "")
        if not isinstance(property_name, str):
            raise CheckpointFormatError(
                "checkpoint field 'property_name' must be a string, got "
                f"{property_name!r}",
                field="property_name",
            )
        cursors: dict[str, int] = {}
        for name in ("db_index", "sigma_index"):
            value = data.get(name, 0)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise CheckpointFormatError(
                    f"checkpoint field {name!r} must be a non-negative "
                    f"integer, got {value!r}",
                    field=name,
                )
            cursors[name] = value
        for name in ("domain_size", "workers"):
            value = data.get(name)
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool)
            ):
                raise CheckpointFormatError(
                    f"checkpoint field {name!r} must be an integer or null, "
                    f"got {value!r}",
                    field=name,
                )
        up_to_iso = data.get("up_to_iso")
        if up_to_iso is not None and not isinstance(up_to_iso, bool):
            raise CheckpointFormatError(
                "checkpoint field 'up_to_iso' must be a boolean or null, "
                f"got {up_to_iso!r}",
                field="up_to_iso",
            )
        extra = data.get("extra", {})
        if not isinstance(extra, Mapping):
            raise CheckpointFormatError(
                f"checkpoint field 'extra' must be an object, got {extra!r}",
                field="extra",
            )
        for key in ("completed_units", "quarantined_units"):
            _validate_cursor_list(extra.get(key, []), field=f"extra.{key}")
        return cls(
            procedure=procedure,
            property_name=property_name,
            db_index=cursors["db_index"],
            sigma_index=cursors["sigma_index"],
            domain_size=data.get("domain_size"),
            up_to_iso=up_to_iso,
            workers=data.get("workers"),
            extra=dict(extra),
        )

    def completed_units(self) -> frozenset[tuple[int, int]]:
        """Cursors beyond (db_index, sigma_index) already fully checked."""
        return frozenset(
            (int(db), int(sig))
            for db, sig in self.extra.get("completed_units", ())
        )

    def quarantined_units(self) -> list[tuple[int, int]]:
        """Cursors quarantined after repeated failures in the producing run.

        These are *not* in :meth:`completed_units` — a resume retries
        them with a fresh attempt count (the failure may have been
        environmental: a bad host, a since-fixed bug, memory pressure).
        """
        return sorted(
            (int(db), int(sig))
            for db, sig in self.extra.get("quarantined_units", ())
        )

    def ensure_compatible(
        self,
        *,
        domain_size: int | None = None,
        up_to_iso: bool | None = None,
        workers: int | None = None,
    ) -> None:
        """Refuse a resume whose enumeration parameters changed.

        A parameter recorded as ``None`` in the checkpoint (pre-existing
        checkpoints, or an explicit-database run with no derived domain)
        is not checked — there is nothing to compare against.
        """
        mismatches = []
        for name, was, now in (
            ("domain_size", self.domain_size, domain_size),
            ("up_to_iso", self.up_to_iso, up_to_iso),
            ("workers", self.workers, workers),
        ):
            if was is not None and now is not None and was != now:
                mismatches.append(f"{name} was {was!r}, now {now!r}")
        if mismatches:
            raise CheckpointMismatchError(
                "checkpoint is incompatible with this run — its cursors "
                "index a different enumeration ("
                + "; ".join(mismatches)
                + "); rerun with the checkpoint's parameters or start fresh"
            )


def _validate_cursor_list(value: Any, *, field: str) -> None:
    """Check a ``[[db, sigma], ...]`` list in a checkpoint's extra block."""
    if not isinstance(value, (list, tuple)):
        raise CheckpointFormatError(
            f"checkpoint field {field!r} must be a list of [db_index, "
            f"sigma_index] pairs, got {type(value).__name__}",
            field=field,
        )
    for i, item in enumerate(value):
        ok = (
            isinstance(item, (list, tuple))
            and len(item) == 2
            and all(
                isinstance(x, int) and not isinstance(x, bool) and x >= 0
                for x in item
            )
        )
        if not ok:
            raise CheckpointFormatError(
                f"checkpoint field {field!r}[{i}] must be a pair of "
                f"non-negative integers, got {item!r}",
                field=field,
            )


class Budget:
    """Caps and a deadline for one verification call, checked cooperatively.

    Parameters
    ----------
    max_snapshots:
        Cap on snapshots explored per (database, sigma) pair — the
        linear-time procedures' unit of work.  ``None`` means unlimited.
    max_states:
        Cap on states per configuration Kripke structure — the
        branching-time procedures' unit of work.
    max_databases:
        Cap on candidate databases examined by this call (a *run*-local
        count: a resumed run starts the count afresh).
    max_valuations:
        Cap on grounded valuations of the universal closure checked.
    timeout_s:
        Wall-clock deadline in seconds, measured from :meth:`start`
        (called by every public entry point).
    strict:
        When True the entry points re-raise
        :class:`VerificationBudgetExceeded` (enriched with partial stats
        and a checkpoint) instead of returning INCONCLUSIVE.

    ``tracer`` (attribute, not a constructor parameter) is the
    :class:`~repro.obs.Tracer` the governor and the code it threads
    through report to.  Entry points install theirs; worker processes
    install a collecting tracer per unit.  Emission happens only at
    *coarse* charges (per database, per absorbed unit) — never per
    snapshot/state/valuation, so the hot loops stay untouched.
    """

    def __init__(
        self,
        max_snapshots: int | None = None,
        max_states: int | None = None,
        max_databases: int | None = None,
        max_valuations: int | None = None,
        timeout_s: float | None = None,
        strict: bool = False,
    ) -> None:
        self.max_snapshots = max_snapshots
        self.max_states = max_states
        self.max_databases = max_databases
        self.max_valuations = max_valuations
        self.timeout_s = timeout_s
        self.strict = strict
        self.databases = 0
        self.valuations = 0
        self.snapshots_total = 0
        self.pair_snapshots = 0
        self.structure_states = 0
        self.tracer: Tracer = NULL_TRACER
        self._deadline: float | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "Budget":
        """Arm the wall-clock deadline; idempotent per top-level call."""
        if self.timeout_s is not None and self._deadline is None:
            self._deadline = time.monotonic() + self.timeout_s
        return self

    @classmethod
    def ensure(
        cls,
        budget: "Budget | None",
        *,
        max_snapshots: int | None = None,
        max_states: int | None = None,
        timeout_s: float | None = None,
        strict: bool = False,
    ) -> "Budget":
        """The governor for one entry-point call.

        An explicitly passed ``budget`` wins; otherwise one is built
        from the entry point's legacy keyword arguments.
        """
        if budget is None:
            budget = cls(
                max_snapshots=max_snapshots,
                max_states=max_states,
                timeout_s=timeout_s,
                strict=strict,
            )
        elif strict:
            budget.strict = True
        return budget.start()

    # -- cooperative checks ------------------------------------------------

    def _out_of_time(self) -> bool:
        return self._deadline is not None and time.monotonic() > self._deadline

    def check_deadline(self) -> None:
        """Raise when the wall-clock deadline has passed.

        Cheap enough (one monotonic-clock read) to call at every
        exploration step — any unit of verifier work dwarfs it.
        """
        if self._out_of_time():
            raise VerificationBudgetExceeded(
                f"wall-clock deadline of {self.timeout_s}s exceeded",
                limit="timeout_s",
            )

    def charge_database(self) -> None:
        """One candidate database is about to be examined."""
        self.check_deadline()
        self.databases += 1
        if self.tracer.active:
            self.tracer.emit(
                "budget.charge", counter="databases", value=self.databases
            )
        if self.max_databases is not None and self.databases > self.max_databases:
            raise VerificationBudgetExceeded(
                f"more than {self.max_databases} candidate databases examined",
                limit="max_databases",
            )

    def begin_pair(self) -> None:
        """Reset the per-(database, sigma) snapshot count."""
        self.check_deadline()
        self.pair_snapshots = 0

    def charge_snapshot(self, n: int = 1) -> None:
        """``n`` new snapshots explored in the current pair."""
        self.pair_snapshots += n
        self.snapshots_total += n
        if self.max_snapshots is not None and self.pair_snapshots > self.max_snapshots:
            raise VerificationBudgetExceeded(
                f"more than {self.max_snapshots} snapshots explored",
                limit="max_snapshots",
            )
        self.check_deadline()

    def charge_valuation(self) -> None:
        """One grounded valuation of the universal closure checked."""
        self.valuations += 1
        if self.max_valuations is not None and self.valuations > self.max_valuations:
            raise VerificationBudgetExceeded(
                f"more than {self.max_valuations} valuations checked",
                limit="max_valuations",
            )
        self.check_deadline()

    def begin_structure(self) -> None:
        """Reset the per-Kripke-structure state count."""
        self.check_deadline()
        self.structure_states = 0

    def charge_state(self, n: int = 1) -> None:
        """``n`` new Kripke states added to the current structure."""
        self.structure_states += n
        if self.max_states is not None and self.structure_states > self.max_states:
            raise VerificationBudgetExceeded(
                f"Kripke structure exceeds {self.max_states} states",
                limit="max_states",
            )
        self.check_deadline()

    def remaining_time(self) -> float | None:
        """Seconds left on the armed deadline; None when no deadline."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - time.monotonic())

    def absorb(self, unit_stats: Mapping[str, Any]) -> None:
        """Fold one completed work unit's counters into this governor.

        Used by the parallel backend: workers charge their own local
        budgets while running, and the parent governor absorbs the
        totals as units complete so the *global* caps (``max_valuations``
        and the deadline) keep their meaning across workers.  The
        per-pair/per-structure caps are enforced worker-side and are not
        re-checked here.
        """
        self.valuations += int(unit_stats.get("valuations_checked", 0))
        self.snapshots_total += int(unit_stats.get("snapshots_explored", 0))
        if self.tracer.active:
            self.tracer.emit(
                "budget.charge", counter="absorbed",
                valuations=self.valuations, snapshots=self.snapshots_total,
            )
        if self.max_valuations is not None and self.valuations > self.max_valuations:
            raise VerificationBudgetExceeded(
                f"more than {self.max_valuations} valuations checked",
                limit="max_valuations",
            )
        self.check_deadline()

    # -- reporting ---------------------------------------------------------

    def counters(self) -> dict[str, int]:
        return {
            "budget_databases": self.databases,
            "budget_valuations": self.valuations,
            "budget_snapshots_total": self.snapshots_total,
        }

    def limits(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for name in ("max_snapshots", "max_states", "max_databases",
                     "max_valuations", "timeout_s"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out


def coverage_summary(
    stats: Mapping[str, Any],
    *,
    limit: str = "",
    phase: str = "",
    total_databases: int | None = None,
) -> str:
    """The human-readable "how far did we get" line for INCONCLUSIVE results.

    Example: ``checked 37/214 candidate databases (52 input-constant
    interpretations, 1204 snapshots) up to domain size 3; interrupted
    during lasso search by max_snapshots``.
    """
    details = []
    if stats.get("sigmas_checked"):
        details.append(f"{stats['sigmas_checked']} input-constant interpretations")
    if stats.get("valuations_checked"):
        details.append(f"{stats['valuations_checked']} valuations")
    if stats.get("snapshots_explored"):
        details.append(f"{stats['snapshots_explored']} snapshots")
    if stats.get("kripke_states"):
        details.append(f"largest Kripke structure {stats['kripke_states']} states")
    parts = []
    if "databases_checked" in stats:
        checked = stats.get("databases_checked", 0)
        dbs = (
            f"{checked}/{total_databases}"
            if total_databases is not None
            else f"{checked}"
        )
        parts.append(f"checked {dbs} candidate databases")
        if details:
            parts.append("(" + ", ".join(details) + ")")
    elif details:
        parts.append("explored " + ", ".join(details))
    else:
        parts.append("no exploration completed")
    if stats.get("domain_size") is not None:
        parts.append(f"up to domain size {stats['domain_size']}")
    text = " ".join(parts)
    if phase or limit:
        tail = "interrupted"
        if phase:
            tail += f" during {phase}"
        if limit:
            tail += f" by {limit}"
        text += "; " + tail
    return text


def degrade(
    exc: VerificationBudgetExceeded,
    *,
    budget: Budget,
    property_name: str,
    method: str,
    stats: Mapping[str, Any],
    checkpoint: Checkpoint | None = None,
    phase: str = "",
    total_databases: int | None = None,
    procedure: str = "",
) -> VerificationResult:
    """Turn a blown budget into an INCONCLUSIVE result (or re-raise).

    Merges the partial ``stats`` into the exception and — unless the
    governor is strict — returns the graceful-degradation result so no
    work already done is lost.
    """
    merged = dict(stats)
    merged.update(exc.stats)
    merged["interrupted_by"] = exc.limit or "budget"
    if phase:
        merged["interrupted_phase"] = phase
    coverage = coverage_summary(
        merged, limit=exc.limit, phase=phase, total_databases=total_databases
    )
    exc.stats = merged
    exc.checkpoint = checkpoint
    if budget.tracer.active:
        budget.tracer.emit(
            "budget.exhausted", limit=exc.limit or "budget", phase=phase
        )
    if budget.strict:
        raise exc
    return VerificationResult(
        verdict=Verdict.INCONCLUSIVE,
        property_name=property_name,
        method=method,
        stats=merged,
        coverage=coverage,
        checkpoint=checkpoint,
        procedure=procedure,
    )
