"""The verifier — decision procedures for the paper's theorems.

- :mod:`repro.verifier.engine` — the run engine behind every entry
  point: the shared option table (one source of truth for kwargs, CLI
  flags, server wire options and ``REPRO_*`` variables), the frozen
  :class:`~repro.verifier.engine.RunConfig` with coded validation
  errors, the :class:`~repro.verifier.engine.Procedure` strategy
  protocol, and the one driver pipeline
  (:func:`~repro.verifier.engine.run_procedure`);
- :mod:`repro.verifier.linear` — input-bounded LTL-FO verification
  (Theorem 3.5) by small-model database enumeration + Büchi products;
- :mod:`repro.verifier.errors` — error-freeness (Theorem 3.5(i)), both
  by direct error-page reachability and via the Lemma A.5 reduction;
- :mod:`repro.verifier.branching` — CTL/CTL* for propositional services
  (Theorem 4.4, Corollary 4.5) and fully propositional services
  (Theorem 4.6);
- :mod:`repro.verifier.search` — Web services with input-driven search
  (Theorem 4.9);
- :mod:`repro.verifier.statics` — the front door :func:`verify`, which
  classifies the (service, property) pair against the paper's
  decidability map and dispatches or refuses with the relevant theorem;
- :mod:`repro.verifier.parallel` — the work-unit execution layer: one
  (database, sigma) pair per unit, run in-process or on a
  ``ProcessPoolExecutor`` (``workers=N``) with deterministic verdicts,
  early cancellation on the first confirmed counterexample, and merged
  frontier checkpoints;
- :mod:`repro.verifier.budget` — the resource governor: snapshot,
  database, valuation and Kripke-state caps plus a wall-clock deadline,
  graceful degradation to ``Verdict.INCONCLUSIVE``, and resumable
  checkpoints;
- :mod:`repro.verifier.results` — verdicts and counterexamples.

Fault tolerance: the parallel layer supervises its workers — failed
units are retried with exponential backoff, crashed pools are rebuilt,
hung units are timed out, and poison units are quarantined (the verdict
degrades to INCONCLUSIVE rather than the run aborting).  Crash-safe
periodic checkpoints survive a kill at any instant, and deterministic
fault injection for testing all of it lives in :mod:`repro.faults`.
"""

from repro.verifier.results import (
    Verdict,
    VerificationResult,
    UndecidableInstanceError,
    VerificationBudgetExceeded,
)
from repro.verifier.budget import (
    Budget,
    Checkpoint,
    CheckpointFormatError,
    CheckpointMismatchError,
    coverage_summary,
)
from repro.verifier.engine import (
    OPTION_TABLE,
    Procedure,
    RunConfig,
    RunConfigError,
    accepted_options,
    default_domain_size,
    enumerate_sigmas,
    fresh_value_pool,
    run_procedure,
)
from repro.verifier.linear import (
    verify_ltlfo,
    explore_configuration_graph,
)
from repro.verifier.parallel import (
    GLOBAL_STOP,
    RetryPolicy,
    RunInterrupted,
    StopToken,
    Supervisor,
    resolve_workers,
)
from repro.verifier.errors import (
    verify_error_free,
    error_page_reachable,
    errorfree_reduction,
)
from repro.verifier.branching import (
    build_snapshot_kripke,
    verify_ctl,
    verify_fully_propositional,
)
from repro.verifier.search import verify_input_driven_search
from repro.verifier.statics import verify, decidability_report, lint_preflight

__all__ = [
    "Verdict",
    "VerificationResult",
    "UndecidableInstanceError",
    "VerificationBudgetExceeded",
    "Budget",
    "Checkpoint",
    "CheckpointFormatError",
    "CheckpointMismatchError",
    "coverage_summary",
    "resolve_workers",
    "RetryPolicy",
    "RunInterrupted",
    "StopToken",
    "GLOBAL_STOP",
    "Supervisor",
    "OPTION_TABLE",
    "Procedure",
    "RunConfig",
    "RunConfigError",
    "accepted_options",
    "run_procedure",
    "verify_ltlfo",
    "default_domain_size",
    "enumerate_sigmas",
    "explore_configuration_graph",
    "fresh_value_pool",
    "verify_error_free",
    "error_page_reachable",
    "errorfree_reduction",
    "build_snapshot_kripke",
    "verify_ctl",
    "verify_fully_propositional",
    "verify_input_driven_search",
    "verify",
    "lint_preflight",
    "decidability_report",
]
