"""Verification verdicts, counterexamples and refusals."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.service.runs import Run


class Verdict(enum.Enum):
    """Outcome of a verification task.

    ``INCONCLUSIVE`` is the graceful-degradation verdict: a resource
    budget (snapshots, databases, valuations, Kripke states, or the
    wall-clock deadline) ran out before the search space was exhausted.
    It is sound for violations — any counterexample found before
    exhaustion would have been reported as VIOLATED — but makes no claim
    about HOLDS over the unexplored remainder.
    """

    HOLDS = "holds"
    VIOLATED = "violated"
    INCONCLUSIVE = "inconclusive"

    def __bool__(self) -> bool:
        return self is Verdict.HOLDS


class UndecidableInstanceError(Exception):
    """The (service, property) pair falls outside every decidable class.

    Carries the reasons (which syntactic restriction fails) and the
    theorem that proves undecidability for the failing extension, so the
    refusal is actionable.
    """

    def __init__(self, reasons: list[str], citation: str) -> None:
        self.reasons = reasons
        self.citation = citation
        summary = "\n  - ".join(reasons[:8])
        super().__init__(
            f"verification undecidable for this instance ({citation}):\n"
            f"  - {summary}"
        )


class VerificationBudgetExceeded(Exception):
    """The exploration exceeded a configured resource budget.

    Raised by the cooperative checks of
    :class:`~repro.verifier.budget.Budget` and by the low-level graph
    builders.  Carries the name of the exceeded ``limit``
    (``"max_snapshots"``, ``"timeout_s"``, ...), the partial ``stats``
    of the work already done, and — when a public entry point re-raises
    in strict mode — the resumable ``checkpoint``, so even strict-mode
    callers don't lose the completed prefix of the search.
    """

    def __init__(
        self,
        message: str = "",
        *,
        limit: str = "",
        stats: dict[str, Any] | None = None,
        checkpoint: Any = None,
    ) -> None:
        super().__init__(message)
        self.limit = limit
        self.stats: dict[str, Any] = dict(stats or {})
        self.checkpoint = checkpoint


@dataclass
class VerificationResult:
    """The result of one verification task.

    ``verdict`` says whether the property holds over the explored space;
    ``counterexample`` (when violated) is a concrete lasso run together
    with its database and input-constant values.  ``stats`` records the
    work done (databases tried, snapshots explored, Büchi sizes, ...)
    for the benchmark harness.  INCONCLUSIVE results additionally carry
    ``coverage`` — a one-line summary of how far the interrupted search
    got — and ``checkpoint``, a resumable
    :class:`~repro.verifier.budget.Checkpoint` cursor (None when the
    procedure has nothing to resume).

    ``procedure`` names the entry point that actually ran (e.g.
    ``"verify_ctl"``) — ``method`` is the human-readable theorem label,
    ``procedure`` the machine-checkable dispatch record, so a caller can
    tell when :func:`~repro.verifier.statics.verify` routed a fully
    propositional service through the Theorem 4.4 enumeration because
    ``databases=``/``domain_size=`` were given.  ``timings`` is the
    per-event-name phase-timing summary from :mod:`repro.obs` (empty
    with the default null tracer).  ``diagnostics`` carries the lint
    pre-flight findings (:class:`~repro.lint.diagnostics.Diagnostic`)
    when :func:`~repro.verifier.statics.verify` ran with
    ``lint="warn"``/``"strict"`` — empty with ``lint="off"`` or a clean
    spec.
    """

    verdict: Verdict
    property_name: str = ""
    method: str = ""
    counterexample: Run | None = None
    counterexample_database: Any = None
    stats: dict[str, Any] = field(default_factory=dict)
    coverage: str = ""
    checkpoint: Any = None
    procedure: str = ""
    timings: dict[str, Any] = field(default_factory=dict)
    diagnostics: list[Any] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        return self.verdict is Verdict.HOLDS

    @property
    def inconclusive(self) -> bool:
        return self.verdict is Verdict.INCONCLUSIVE

    @property
    def quarantined_units(self) -> tuple[tuple[int, int], ...]:
        """Cursors of work units quarantined after exhausting retries.

        Non-empty only under the supervised engine when a unit kept
        failing (see :mod:`repro.verifier.parallel`); such units were
        never verified, so an otherwise-clean run reports INCONCLUSIVE
        with a checkpoint that retries them on resume.
        """
        return tuple(
            tuple(c) for c in self.stats.get("quarantined_units", ())
        )

    def __bool__(self) -> bool:
        return self.holds

    def describe(self, service=None) -> str:
        """Multi-line report suitable for printing."""
        lines = [
            f"property : {self.property_name or '(unnamed)'}",
            f"method   : {self.method}",
            f"verdict  : {self.verdict.value.upper()}",
        ]
        if self.procedure:
            lines.insert(2, f"procedure: {self.procedure}")
        if self.timings:
            lines.append(
                "timings  : " + ", ".join(
                    f"{name}×{agg['count']}={agg['total_s']:.3f}s"
                    for name, agg in self.timings.items()
                )
            )
        interesting = (
            "databases_checked", "sigmas_checked", "valuations_checked",
            "snapshots_explored", "buchi_states", "kripke_states",
            "interrupted_by", "interrupted_phase",
        )
        shown = {k: v for k, v in self.stats.items() if k in interesting}
        if shown:
            lines.append(
                "stats    : " + ", ".join(f"{k}={v}" for k, v in sorted(shown.items()))
            )
        if self.coverage:
            lines.append(f"coverage : {self.coverage}")
        if self.diagnostics:
            counts: dict[str, int] = {}
            for d in self.diagnostics:
                key = getattr(d.severity, "value", str(d.severity))
                counts[key] = counts.get(key, 0) + 1
            summary = ", ".join(
                f"{n} {sev}{'s' if n != 1 else ''}"
                for sev, n in counts.items()
            )
            lines.append(
                f"lint     : {summary} (see result.diagnostics, or run "
                "`repro lint`)"
            )
        if self.inconclusive:
            lines.append(
                "note     : budget exhausted before the search space — no "
                "violation found so far, no claim about the rest; resume "
                "from the checkpoint or raise the budget"
            )
        if self.counterexample is not None:
            lines.append("counterexample run:")
            lines.append(self.counterexample.describe())
            if self.counterexample_database is not None:
                lines.append(f"database: {self.counterexample_database!r}")
        return "\n".join(lines)
