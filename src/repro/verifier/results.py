"""Verification verdicts, counterexamples and refusals."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.service.runs import Run


class Verdict(enum.Enum):
    """Outcome of a verification task."""

    HOLDS = "holds"
    VIOLATED = "violated"

    def __bool__(self) -> bool:
        return self is Verdict.HOLDS


class UndecidableInstanceError(Exception):
    """The (service, property) pair falls outside every decidable class.

    Carries the reasons (which syntactic restriction fails) and the
    theorem that proves undecidability for the failing extension, so the
    refusal is actionable.
    """

    def __init__(self, reasons: list[str], citation: str) -> None:
        self.reasons = reasons
        self.citation = citation
        summary = "\n  - ".join(reasons[:8])
        super().__init__(
            f"verification undecidable for this instance ({citation}):\n"
            f"  - {summary}"
        )


class VerificationBudgetExceeded(Exception):
    """The exploration exceeded the configured state/database budget."""


@dataclass
class VerificationResult:
    """The result of one verification task.

    ``verdict`` says whether the property holds over the explored space;
    ``counterexample`` (when violated) is a concrete lasso run together
    with its database and input-constant values.  ``stats`` records the
    work done (databases tried, snapshots explored, Büchi sizes, ...)
    for the benchmark harness.
    """

    verdict: Verdict
    property_name: str = ""
    method: str = ""
    counterexample: Run | None = None
    counterexample_database: Any = None
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def holds(self) -> bool:
        return self.verdict is Verdict.HOLDS

    def __bool__(self) -> bool:
        return self.holds

    def describe(self, service=None) -> str:
        """Multi-line report suitable for printing."""
        lines = [
            f"property : {self.property_name or '(unnamed)'}",
            f"method   : {self.method}",
            f"verdict  : {self.verdict.value.upper()}",
        ]
        interesting = (
            "databases_checked", "sigmas_checked", "valuations_checked",
            "snapshots_explored", "buchi_states", "kripke_states",
        )
        shown = {k: v for k, v in self.stats.items() if k in interesting}
        if shown:
            lines.append(
                "stats    : " + ", ".join(f"{k}={v}" for k, v in sorted(shown.items()))
            )
        if self.counterexample is not None:
            lines.append("counterexample run:")
            lines.append(self.counterexample.describe())
            if self.counterexample_database is not None:
                lines.append(f"database: {self.counterexample_database!r}")
        return "\n".join(lines)
