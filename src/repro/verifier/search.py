"""Verification of Web services with input-driven search (Theorem 4.9).

Definition 4.7 services model staged refinement search: a single unary
input whose next options are the ``R_I``-successors of the previous
input, filtered by a quantifier-free condition over the database and the
propositional states.  The paper decides CTL(*) properties by reducing
to CTL(*) satisfiability; operationally, the input type abstraction in
that proof means small search graphs suffice, so this module enumerates
databases (search graph + unary type relations + ``i0``) over a bounded
domain and model checks each configuration Kripke structure — the same
small-model schema as the rest of the verifier, specialised with the
IDS shape check.  Each database is one work unit of
:mod:`repro.verifier.parallel` (the same unit as :func:`verify_ctl`),
so ``workers=N`` parallelises the enumeration deterministically.

The pipeline lives in :mod:`repro.verifier.engine`; this module
contributes only the Theorem 4.9 strategy, which reuses the
``verify_ctl`` unit checker.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.ctl.syntax import StateFormula, ctl_size, is_ctl
from repro.obs import Tracer
from repro.schema.database import Database
from repro.service.classify import ServiceClass, classify
from repro.service.webservice import WebService
from repro.verifier.budget import Budget, Checkpoint
from repro.verifier.engine import (
    DEFAULT_KRIPKE_BUDGET,
    Procedure,
    RunConfig,
    run_procedure,
)
from repro.verifier.results import (
    UndecidableInstanceError,
    Verdict,
    VerificationResult,
)


class _InputDrivenSearchProcedure(Procedure):
    """The Theorem 4.9 strategy behind :func:`verify_input_driven_search`.

    The per-database work is identical to ``verify_ctl``'s (build the
    configuration Kripke structure, model check), so the same unit
    checker serves both procedures.
    """

    name = "verify_input_driven_search"
    unit_procedure = "verify_ctl"

    def __init__(
        self, service: WebService, formula: StateFormula, cfg: RunConfig
    ) -> None:
        super().__init__(service, cfg)
        self.formula = formula

    def preflight(self) -> None:
        if self.cfg.check_restrictions:
            report = classify(self.service)
            if not report.is_in(ServiceClass.INPUT_DRIVEN_SEARCH):
                raise UndecidableInstanceError(
                    report.why_not(ServiceClass.INPUT_DRIVEN_SEARCH),
                    "Theorem 4.9 requires the input-driven-search shape "
                    "(Definition 4.7)",
                )

    def property_name(self) -> str:
        return str(self.formula)

    def method(self) -> str:
        fragment = "CTL" if is_ctl(self.formula) else "CTL*"
        return f"input-driven search {fragment} (Theorem 4.9)"

    def compile_payload(self, tracer: Tracer) -> dict:
        return {"formula": self.formula}

    def init_stats(self, used_size: int | None, n_workers: int) -> dict:
        return {
            "databases_checked": 0,
            "databases_skipped": 0,
            "kripke_states": 0,
            "formula_size": ctl_size(self.formula),
            "domain_size": used_size,
            "workers": n_workers,
        }

    def fold_violation(
        self, outcome, stats: dict, property_name: str, method: str
    ) -> VerificationResult:
        detail = outcome.violation.detail
        stats["counterexample_db_index"] = outcome.violation.db_index
        stats["violating_initial_states"] = detail["violating_initial_states"]
        return VerificationResult(
            verdict=Verdict.VIOLATED,
            property_name=property_name,
            method=method,
            counterexample_database=detail["database"],
            stats=stats,
            procedure=self.name,
        )

    def interrupt_phase(self, exc) -> str:
        return "search-graph Kripke construction / model checking"


def verify_input_driven_search(
    service: WebService,
    formula: StateFormula,
    databases: Iterable[Database] | None = None,
    domain_size: int | None = None,
    check_restrictions: bool = True,
    max_states: int = DEFAULT_KRIPKE_BUDGET,
    budget: Budget | None = None,
    timeout_s: float | None = None,
    strict: bool = False,
    resume: Checkpoint | None = None,
    workers: int | None = None,
    tracer: Tracer | None = None,
    retry: int | None = None,
    unit_timeout_s: float | None = None,
    faults: Any = None,
    checkpoint_path: str | None = None,
    checkpoint_every: int | None = None,
    **unsupported: Any,
) -> VerificationResult:
    """Decide ``W ⊨ φ`` for input-driven-search services (Theorem 4.9).

    ``databases`` would normally be the concrete search graphs of
    interest (e.g. the Figure 1 hierarchy); the default enumeration over
    ``domain_size`` anonymous nodes is exhaustive but grows quickly with
    the number of unary relations.  A blown budget returns
    ``Verdict.INCONCLUSIVE`` with a resumable database cursor unless
    ``strict=True`` (see :mod:`repro.verifier.budget`); ``workers``
    fans the databases out to a process pool with deterministic
    verdicts (see :mod:`repro.verifier.parallel`); ``tracer`` receives
    the structured event stream (see :mod:`repro.obs`).
    ``retry``/``unit_timeout_s``/``faults``/``checkpoint_path``/
    ``checkpoint_every`` configure worker supervision, fault injection
    and crash-safe periodic checkpoints — see
    :func:`repro.verifier.linear.verify_ltlfo` for the semantics.
    """
    cfg = RunConfig.build("verify_input_driven_search", dict(
        databases=databases,
        domain_size=domain_size,
        check_restrictions=check_restrictions,
        max_states=max_states,
        budget=budget,
        timeout_s=timeout_s,
        strict=strict,
        resume=resume,
        workers=workers,
        tracer=tracer,
        retry=retry,
        unit_timeout_s=unit_timeout_s,
        faults=faults,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
    ), unsupported)
    return run_procedure(_InputDrivenSearchProcedure(service, formula, cfg))
