"""Verification of Web services with input-driven search (Theorem 4.9).

Definition 4.7 services model staged refinement search: a single unary
input whose next options are the ``R_I``-successors of the previous
input, filtered by a quantifier-free condition over the database and the
propositional states.  The paper decides CTL(*) properties by reducing
to CTL(*) satisfiability; operationally, the input type abstraction in
that proof means small search graphs suffice, so this module enumerates
databases (search graph + unary type relations + ``i0``) over a bounded
domain and model checks each configuration Kripke structure — the same
small-model schema as the rest of the verifier, specialised with the
IDS shape check.  Each database is one work unit of
:mod:`repro.verifier.parallel` (the same unit as :func:`verify_ctl`),
so ``workers=N`` parallelises the enumeration deterministically.
"""

from __future__ import annotations

import time
from typing import Any, Iterable

from repro.ctl.syntax import StateFormula, ctl_size, is_ctl
from repro.obs import Tracer, finalize_result, resolve_tracer
from repro.schema.database import Database
from repro.service.classify import ServiceClass, classify
from repro.service.compiled import pruning_stats, warm_service_plans
from repro.service.webservice import WebService
from repro.verifier.branching import (
    DEFAULT_KRIPKE_BUDGET,
    build_snapshot_kripke,
)
from repro.verifier.budget import Budget, Checkpoint, degrade
from repro.verifier.linear import _candidate_databases
from repro.verifier.parallel import (
    Supervisor,
    TaskSpec,
    UnitStream,
    apply_quarantine,
    frontier_checkpoint,
    merge_unit_stats,
    resolve_workers,
    run_units,
)
from repro.verifier.results import (
    UndecidableInstanceError,
    Verdict,
    VerificationBudgetExceeded,
    VerificationResult,
)


def verify_input_driven_search(
    service: WebService,
    formula: StateFormula,
    databases: Iterable[Database] | None = None,
    domain_size: int | None = None,
    check_restrictions: bool = True,
    max_states: int = DEFAULT_KRIPKE_BUDGET,
    budget: Budget | None = None,
    timeout_s: float | None = None,
    strict: bool = False,
    resume: Checkpoint | None = None,
    workers: int | None = None,
    tracer: Tracer | None = None,
    retry: int | None = None,
    unit_timeout_s: float | None = None,
    faults: Any = None,
    checkpoint_path: str | None = None,
    checkpoint_every: int | None = None,
) -> VerificationResult:
    """Decide ``W ⊨ φ`` for input-driven-search services (Theorem 4.9).

    ``databases`` would normally be the concrete search graphs of
    interest (e.g. the Figure 1 hierarchy); the default enumeration over
    ``domain_size`` anonymous nodes is exhaustive but grows quickly with
    the number of unary relations.  A blown budget returns
    ``Verdict.INCONCLUSIVE`` with a resumable database cursor unless
    ``strict=True`` (see :mod:`repro.verifier.budget`); ``workers``
    fans the databases out to a process pool with deterministic
    verdicts (see :mod:`repro.verifier.parallel`); ``tracer`` receives
    the structured event stream (see :mod:`repro.obs`).
    ``retry``/``unit_timeout_s``/``faults``/``checkpoint_path``/
    ``checkpoint_every`` configure worker supervision, fault injection
    and crash-safe periodic checkpoints — see
    :func:`repro.verifier.linear.verify_ltlfo` for the semantics.
    """
    if check_restrictions:
        report = classify(service)
        if not report.is_in(ServiceClass.INPUT_DRIVEN_SEARCH):
            raise UndecidableInstanceError(
                report.why_not(ServiceClass.INPUT_DRIVEN_SEARCH),
                "Theorem 4.9 requires the input-driven-search shape "
                "(Definition 4.7)",
            )

    n_workers = resolve_workers(workers)
    tr = resolve_tracer(tracer)
    gov = Budget.ensure(
        budget, max_states=max_states, timeout_s=timeout_s, strict=strict
    )
    gov.tracer = tr
    dbs, used_size = _candidate_databases(
        service, None, databases, domain_size, up_to_iso=True,
        on_step=gov.check_deadline,
    )
    iso_used = True if databases is None else None
    if resume is not None:
        resume.ensure_compatible(
            domain_size=used_size, up_to_iso=iso_used, workers=n_workers
        )
    total_dbs = len(dbs) if isinstance(dbs, list) else None
    fragment = "CTL" if is_ctl(formula) else "CTL*"
    method = f"input-driven search {fragment} (Theorem 4.9)"
    stats: dict = {
        "databases_checked": 0,
        "databases_skipped": 0,
        "kripke_states": 0,
        "formula_size": ctl_size(formula),
        "domain_size": used_size,
        "workers": n_workers,
    }

    # Warm the rule plans in the parent (workers re-warm their own copy
    # in the pool initialiser), so traces stay worker-count independent.
    plan_started = time.monotonic()
    n_plans = warm_service_plans(service)
    if tr.active:
        tr.emit(
            "plan.compiled",
            dur=time.monotonic() - plan_started,
            n_plans=n_plans,
        )
        pruned_rules, pruned_pages = pruning_stats(service)
        if pruned_rules or pruned_pages:
            tr.emit(
                "plan.pruned",
                pruned_rules=pruned_rules, pruned_pages=pruned_pages,
            )

    # The per-database work is identical to verify_ctl's (build the
    # configuration Kripke structure, model check), so the same unit
    # checker serves both procedures.
    sup = Supervisor.resolve(
        retry=retry, unit_timeout_s=unit_timeout_s, faults=faults,
        checkpoint_path=checkpoint_path, checkpoint_every=checkpoint_every,
    )
    sup.frontier_kwargs = dict(
        procedure="verify_input_driven_search",
        property_name=str(formula),
        domain_size=used_size,
        up_to_iso=iso_used,
        workers=n_workers,
        resume=resume,
    )
    spec = TaskSpec(
        procedure="verify_ctl",
        service=service,
        payload={"formula": formula},
        unit_limits={"max_states": gov.max_states},
        traced=tr.active,
        faults=sup.plan,
    )
    stream = UnitStream(dbs, gov, stats, resume=resume)
    outcome = run_units(spec, stream, gov, n_workers, supervisor=sup)
    merge_unit_stats(stats, outcome.unit_stats)
    apply_quarantine(outcome, stats)

    if outcome.violation is not None:
        detail = outcome.violation.detail
        stats["counterexample_db_index"] = outcome.violation.db_index
        stats["violating_initial_states"] = detail["violating_initial_states"]
        return finalize_result(tr, VerificationResult(
            verdict=Verdict.VIOLATED,
            property_name=str(formula),
            method=method,
            counterexample_database=detail["database"],
            stats=stats,
            procedure="verify_input_driven_search",
        ))
    if outcome.interrupted is not None:
        return finalize_result(tr, degrade(
            outcome.interrupted,
            budget=gov,
            property_name=str(formula),
            method=method,
            stats=stats,
            checkpoint=frontier_checkpoint(
                outcome,
                procedure="verify_input_driven_search",
                property_name=str(formula),
                domain_size=used_size,
                up_to_iso=iso_used,
                workers=n_workers,
                resume=resume,
            ),
            phase="search-graph Kripke construction / model checking",
            total_databases=total_dbs,
            procedure="verify_input_driven_search",
        ))
    return finalize_result(tr, VerificationResult(
        verdict=Verdict.HOLDS,
        property_name=str(formula),
        method=method,
        stats=stats,
        procedure="verify_input_driven_search",
    ))
