"""FD + IND implication → verification with state projections (Theorem 3.8).

The implication problem for functional and inclusion dependencies is
undecidable (Chandra & Vardi).  The theorem's reduction builds a
*simple*, input-bounded Web service **with state projections** — state
rules of the shape ``S(x) ← ∃y S'(x, y)``, the one relaxation this class
allows — and an input-bounded LTL-FO sentence φ such that ``W ⊨ φ`` iff
``Σ ⊨ f``:

- the user populates a scratch relation ``S`` tuple by tuple (options
  come from the cross product of the unary database relation ``R``);
- toggling the propositional input ``done`` freezes ``S``;
- projection rules then compute, for each dependency in Σ, whether the
  frozen ``S`` violates it, raising the state proposition ``viol``;
- a per-tuple state relation records violations of the candidate ``f``;
- φ says: every run either never finishes, or finishes with some Σ
  violation, or satisfies ``f``.

The module also ships ground truth for the FD-only fragment
(:func:`fd_closure` / :func:`fd_implies`, Armstrong's axioms via
attribute-set closure), which the tests compare the verifier against on
small database bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.fol.formulas import And, Atom, Eq, Exists, Formula, Not
from repro.fol.terms import Var
from repro.ltl.ltlfo import F, G, LTLFOSentence
from repro.ltl.syntax import LAnd, LOr
from repro.service.builder import ServiceBuilder
from repro.service.webservice import WebService


@dataclass(frozen=True)
class FunctionalDependency:
    """``X → A`` over a single relation of arity ``arity`` (0-indexed
    column positions)."""

    lhs: tuple[int, ...]
    rhs: int

    def __str__(self) -> str:
        left = ",".join(str(i) for i in self.lhs)
        return f"[{left}] -> {self.rhs}"


@dataclass(frozen=True)
class InclusionDependency:
    """``S[X] ⊆ S[Y]`` over a single relation (column position lists of
    equal length)."""

    lhs: tuple[int, ...]
    rhs: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lhs) != len(self.rhs):
            raise ValueError("inclusion dependency sides must have equal length")

    def __str__(self) -> str:
        left = ",".join(str(i) for i in self.lhs)
        right = ",".join(str(i) for i in self.rhs)
        return f"S[{left}] ⊆ S[{right}]"


def fd_closure(
    attrs: Iterable[int], fds: Iterable[FunctionalDependency]
) -> frozenset[int]:
    """Attribute-set closure under Armstrong's axioms."""
    closure = set(attrs)
    changed = True
    fds = list(fds)
    while changed:
        changed = False
        for fd in fds:
            if set(fd.lhs) <= closure and fd.rhs not in closure:
                closure.add(fd.rhs)
                changed = True
    return frozenset(closure)


def fd_implies(
    sigma: Iterable[FunctionalDependency], f: FunctionalDependency
) -> bool:
    """FD-only implication (decidable): ``Σ ⊨ f``."""
    return f.rhs in fd_closure(f.lhs, sigma)


def violates_fd(relation: Iterable[tuple], fd: FunctionalDependency) -> bool:
    """Whether a concrete relation violates an FD (test helper)."""
    seen: dict[tuple, object] = {}
    for row in relation:
        key = tuple(row[i] for i in fd.lhs)
        if key in seen and seen[key] != row[fd.rhs]:
            return True
        seen.setdefault(key, row[fd.rhs])
    return False


def violates_ind(relation: Iterable[tuple], ind: InclusionDependency) -> bool:
    """Whether a concrete relation violates an IND (test helper)."""
    rows = list(relation)
    rhs_proj = {tuple(row[i] for i in ind.rhs) for row in rows}
    return any(tuple(row[i] for i in ind.lhs) not in rhs_proj for row in rows)


# ---------------------------------------------------------------------------
# the Theorem 3.8 encoding
# ---------------------------------------------------------------------------

def dependencies_to_service(
    arity: int,
    sigma: Sequence[FunctionalDependency | InclusionDependency],
    f: FunctionalDependency,
    name: str = "dependency-service",
) -> tuple[WebService, LTLFOSentence]:
    """Build the Theorem 3.8 instance ``(W, φ)`` with ``W ⊨ φ ⟺ Σ ⊨ f``.

    ``arity`` is the arity of the scratch relation ``S``; dependencies
    refer to its 0-indexed columns.
    """
    b = ServiceBuilder(name)
    b.database("R", 1)
    b.input("I", arity)
    b.input("done", 0)
    b.state("S", arity)
    b.state("stop1").state("stop2")
    b.state("sigma_viol")

    svars = tuple(f"s{i}" for i in range(arity))
    sterm = tuple(Var(v) for v in svars)

    page = b.page("W", home=True)
    page.toggle("done")
    # Options: the cross product of the active domain (via unary R).
    page.options(
        "I",
        And([Atom("R", (Var(v),)) for v in svars]),
        svars,
    )
    # Populate S until the user toggles done.
    page.insert(
        "S",
        And(Atom("I", sterm), Not(Atom("stop1", ()))),
        svars,
    )
    page.insert("stop1", Atom("done", ()))
    page.insert("stop2", Atom("stop1", ()))

    # Per-dependency violation machinery, evaluated once frozen (stop2).
    for idx, dep in enumerate(sigma):
        if isinstance(dep, InclusionDependency):
            _add_ind_rules(b, page, idx, dep, arity)
        else:
            _add_fd_rules(b, page, f"sig{idx}", dep, arity)

    # Violations of the candidate f (recorded per witness triple).
    _add_fd_rules(b, page, "cand", f, arity)

    service = b.build()

    # φ:  ∀w  [ G ¬done ]  ∨  [ F done ∧ ( F sigma_viol ∨ G ¬cand_viol3(w) ) ]
    k = len(f.lhs)
    wvars = tuple([f"w{i}" for i in range(k)] + ["a1", "a2"])
    cand_atom = Atom("cand_viol3", tuple(Var(v) for v in wvars))
    sentence = LTLFOSentence(
        wvars,
        LOr(
            G(Not(Atom("done", ()))),
            LAnd(
                F(Atom("done", ())),
                LOr(
                    F(Atom("sigma_viol", ())),
                    G(Not(cand_atom)),
                ),
            ),
        ),
        name=f"Sigma implies {f}",
    )
    return service, sentence


def _add_fd_rules(
    b: ServiceBuilder,
    page,
    prefix: str,
    fd: FunctionalDependency,
    arity: int,
) -> None:
    """States ``<prefix>_proj`` (projection of S on X·A), ``<prefix>_viol3``
    (witnessed violations) and, for Σ members, the ``sigma_viol`` flag."""
    k = len(fd.lhs)
    proj = f"{prefix}_proj"
    viol3 = f"{prefix}_viol3"
    b.state(proj, k + 1)
    b.state(viol3, k + 2)

    # Projection of S onto the X columns followed by the A column —
    # a reordered copy (head variables free) plus the projection rule
    # S(x) <- exists y S'(x, y) that defines this undecidable class.
    reorder = f"{prefix}_reorder"
    b.state(reorder, arity)
    all_vars = tuple(f"s{i}" for i in range(arity))
    order = list(fd.lhs) + [fd.rhs] + [
        i for i in range(arity) if i not in fd.lhs and i != fd.rhs
    ]
    head = tuple(all_vars[i] for i in order)
    page.insert(
        reorder,
        Atom("S", tuple(Var(v) for v in all_vars)),
        head,
    )
    proj_vars = head[: k + 1]
    rest_vars = head[k + 1:]
    proj_body: Formula = Atom(reorder, tuple(Var(v) for v in head))
    if rest_vars:
        proj_body = Exists(rest_vars, proj_body)
    page.insert(proj, proj_body, proj_vars)

    # viol3(x, a1, a2): two A-values for the same X-tuple.
    xvars = tuple(f"x{i}" for i in range(k))
    a1, a2 = Var("a1"), Var("a2")
    xterm = tuple(Var(v) for v in xvars)
    page.insert(
        viol3,
        And(
            Atom(proj, xterm + (a1,)),
            Atom(proj, xterm + (a2,)),
            Not(Eq(a1, a2)),
            Atom("stop2", ()),
        ),
        xvars + ("a1", "a2"),
    )
    if prefix != "cand":
        page.insert(
            "sigma_viol",
            Exists(
                xvars + ("a1", "a2"),
                Atom(viol3, xterm + (a1, a2)),
            ),
        )


def _add_ind_rules(
    b: ServiceBuilder,
    page,
    idx: int,
    ind: InclusionDependency,
    arity: int,
) -> None:
    """States for one IND of Σ: the two projections and the flag."""
    k = len(ind.lhs)
    all_vars = tuple(f"s{i}" for i in range(arity))

    names = {}
    for side, cols in (("lhs", ind.lhs), ("rhs", ind.rhs)):
        reorder = f"ind{idx}_{side}_reorder"
        proj = f"ind{idx}_{side}"
        names[side] = proj
        b.state(reorder, arity)
        b.state(proj, k)
        order = list(cols) + [i for i in range(arity) if i not in cols]
        head = tuple(all_vars[i] for i in order)
        page.insert(
            reorder, Atom("S", tuple(Var(v) for v in all_vars)), head
        )
        body: Formula = Atom(reorder, tuple(Var(v) for v in head))
        if head[k:]:
            body = Exists(head[k:], body)
        page.insert(proj, body, head[:k])

    xvars = tuple(f"x{i}" for i in range(k))
    xterm = tuple(Var(v) for v in xvars)
    bad = f"ind{idx}_bad"
    b.state(bad, k)
    page.insert(
        bad,
        And(
            Atom(names["lhs"], xterm),
            Not(Atom(names["rhs"], xterm)),
            Atom("stop2", ()),
        ),
        xvars,
    )
    page.insert(
        "sigma_viol",
        Exists(xvars, Atom(bad, xterm)),
    )
