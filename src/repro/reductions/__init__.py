"""Executable forms of the paper's undecidability reductions.

Each module implements one boundary-of-decidability construction,
together with the source problem it reduces from.  They serve three
purposes in the library: they document exactly where verification
becomes impossible, they stress-test the verifier (the encodings are
adversarial specifications), and they are the workload generators for
the hardness benchmarks.

- :mod:`repro.reductions.qbf` — QBF → error-freeness (Lemma A.6, the
  PSPACE lower bound of Theorem 3.5);
- :mod:`repro.reductions.turing` — Turing machine halting → verification
  with non-ground input options (Theorem 3.7);
- :mod:`repro.reductions.dependencies` — FD+IND implication →
  verification with state projections (Theorem 3.8);
- :mod:`repro.reductions.fovalidity` — ∃*∀* FO validity → CTL-FO
  verification (Theorem 4.2).
"""

from repro.reductions.qbf import (
    QBF,
    QVar,
    QNot,
    QAnd,
    QOr,
    QExists,
    QForall,
    qbf_evaluate,
    random_qbf,
    qbf_to_service,
)
from repro.reductions.turing import (
    TuringMachine,
    simulate_tm,
    tm_to_service,
    halting_sentence,
    BUSY_BEAVER_3,
    LOOPER,
)
from repro.reductions.dependencies import (
    FunctionalDependency,
    InclusionDependency,
    fd_closure,
    fd_implies,
    dependencies_to_service,
)
from repro.reductions.fovalidity import (
    exists_forall_validity,
    validity_to_service,
)

__all__ = [
    "QBF", "QVar", "QNot", "QAnd", "QOr", "QExists", "QForall",
    "qbf_evaluate", "random_qbf", "qbf_to_service",
    "TuringMachine", "simulate_tm", "tm_to_service", "halting_sentence",
    "BUSY_BEAVER_3", "LOOPER",
    "FunctionalDependency", "InclusionDependency",
    "fd_closure", "fd_implies", "dependencies_to_service",
    "exists_forall_validity", "validity_to_service",
]
