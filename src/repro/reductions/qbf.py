"""QBF → error-freeness (Lemma A.6).

The PSPACE lower bound of Theorem 3.5: from a closed quantified boolean
formula φ, build an input-bounded Web service ``W_φ`` that errs (by
target-rule ambiguity) iff φ is true.  The construction follows the
lemma: a unary database relation ``R`` supplies candidate truth values,
the two unary inputs ``I0``/``I1`` let the user pick a "false" and a
"true" element, and two target rules share the sentence

    ∃v0 (I0(v0) ∧ ∃v1 (I1(v1) ∧ v0 ≠ v1 ∧ φ'))

where φ' replaces each boolean variable ``x`` by ``x = v1`` and each
quantifier ``∃x ψ`` by the guarded pair
``∃x(I0(x) ∧ ψ') ∨ ∃x(I1(x) ∧ ψ')`` (``∀`` dually via negation), which
keeps the whole sentence input-bounded.

So: ``W_φ`` is error free ⟺ φ is false.  Verified databases need only
two elements in ``R``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping

from repro.fol.formulas import (
    And,
    Atom,
    Eq,
    Exists,
    Formula,
    Not,
    Or,
)
from repro.fol.terms import Var
from repro.service.builder import ServiceBuilder
from repro.service.webservice import WebService


class QBF:
    """Base class of quantified boolean formulas (prenex not required)."""

    __slots__ = ()


@dataclass(frozen=True)
class QVar(QBF):
    """A boolean variable occurrence."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class QNot(QBF):
    body: QBF

    def __str__(self) -> str:
        return f"¬({self.body})"


@dataclass(frozen=True)
class QAnd(QBF):
    left: QBF
    right: QBF

    def __str__(self) -> str:
        return f"({self.left} ∧ {self.right})"


@dataclass(frozen=True)
class QOr(QBF):
    left: QBF
    right: QBF

    def __str__(self) -> str:
        return f"({self.left} ∨ {self.right})"


@dataclass(frozen=True)
class QExists(QBF):
    var: str
    body: QBF

    def __str__(self) -> str:
        return f"∃{self.var}.({self.body})"


@dataclass(frozen=True)
class QForall(QBF):
    var: str
    body: QBF

    def __str__(self) -> str:
        return f"∀{self.var}.({self.body})"


def qbf_evaluate(f: QBF, env: Mapping[str, bool] | None = None) -> bool:
    """Brute-force evaluation (the ground truth for tests/benchmarks)."""
    env = dict(env or {})
    if isinstance(f, QVar):
        return env[f.name]
    if isinstance(f, QNot):
        return not qbf_evaluate(f.body, env)
    if isinstance(f, QAnd):
        return qbf_evaluate(f.left, env) and qbf_evaluate(f.right, env)
    if isinstance(f, QOr):
        return qbf_evaluate(f.left, env) or qbf_evaluate(f.right, env)
    if isinstance(f, QExists):
        return any(
            qbf_evaluate(f.body, {**env, f.var: v}) for v in (False, True)
        )
    if isinstance(f, QForall):
        return all(
            qbf_evaluate(f.body, {**env, f.var: v}) for v in (False, True)
        )
    raise TypeError(f"unknown QBF node {f!r}")


def random_qbf(
    n_vars: int,
    n_clauses: int = 4,
    rng: int | random.Random | None = None,
    forall_odd: bool = True,
) -> QBF:
    """A random closed QBF: alternating prefix over a random 3-CNF-ish
    matrix.  Seeded for reproducibility."""
    rand = rng if isinstance(rng, random.Random) else random.Random(rng)
    names = [f"x{i}" for i in range(n_vars)]
    clauses: list[QBF] = []
    for _ in range(n_clauses):
        lits: list[QBF] = []
        for _ in range(min(3, n_vars)):
            v = QVar(rand.choice(names))
            lits.append(QNot(v) if rand.random() < 0.5 else v)
        clause = lits[0]
        for lit in lits[1:]:
            clause = QOr(clause, lit)
        clauses.append(clause)
    matrix: QBF = clauses[0]
    for clause in clauses[1:]:
        matrix = QAnd(matrix, clause)
    body = matrix
    for i, name in reversed(list(enumerate(names))):
        if forall_odd and i % 2 == 1:
            body = QForall(name, body)
        else:
            body = QExists(name, body)
    return body


# ---------------------------------------------------------------------------
# the Lemma A.6 encoding
# ---------------------------------------------------------------------------

_TRUE_VAR = "vtrue"
_FALSE_VAR = "vfalse"


def _translate(f: QBF, positive: bool = True) -> Formula:
    """φ' of the lemma: boolean vars become equalities with ``vtrue``,
    quantifiers become guarded input-bounded quantification.

    Negation is pushed inward so that every quantifier ends up
    existential (guarded by an input atom), keeping the result
    input-bounded.
    """
    if isinstance(f, QVar):
        eq = Eq(Var(f.name), Var(_TRUE_VAR))
        return eq if positive else Not(eq)
    if isinstance(f, QNot):
        return _translate(f.body, not positive)
    if isinstance(f, QAnd):
        parts = (_translate(f.left, positive), _translate(f.right, positive))
        return And(parts) if positive else Or(parts)
    if isinstance(f, QOr):
        parts = (_translate(f.left, positive), _translate(f.right, positive))
        return Or(parts) if positive else And(parts)
    if isinstance(f, (QExists, QForall)):
        is_exists = isinstance(f, QExists) if positive else isinstance(f, QForall)
        body = _translate(f.body, positive)
        guarded = Or(
            Exists(f.var, And(Atom("I0", (Var(f.var),)), body)),
            Exists(f.var, And(Atom("I1", (Var(f.var),)), body)),
        )
        return guarded if is_exists else Not(
            Or(
                Exists(f.var, And(Atom("I0", (Var(f.var),)), Not(body))),
                Exists(f.var, And(Atom("I1", (Var(f.var),)), Not(body))),
            )
        )
    raise TypeError(f"unknown QBF node {f!r}")


def qbf_to_service(f: QBF, name: str = "qbf-service") -> WebService:
    """The Lemma A.6 Web service: errs (ambiguity) iff ``f`` is true.

    Input-bounded by construction; error-freeness checking over a
    2-element ``R`` decides the QBF, exhibiting the PSPACE-hardness.
    """
    phi = _translate(f)
    trigger = Exists(
        _FALSE_VAR,
        And(
            Atom("I0", (Var(_FALSE_VAR),)),
            Exists(
                _TRUE_VAR,
                And(
                    Atom("I1", (Var(_TRUE_VAR),)),
                    Not(Eq(Var(_FALSE_VAR), Var(_TRUE_VAR))),
                    phi,
                ),
            ),
        ),
    )

    b = ServiceBuilder(name)
    b.database("R", 1)
    b.input("I0", 1).input("I1", 1)
    w0 = b.page("W0", home=True)
    w0.options("I0", Atom("R", (Var("x"),)), ("x",))
    w0.options("I1", Atom("R", (Var("x"),)), ("x",))
    w0.target("W1", trigger)
    w0.target("W2", trigger)
    b.page("W1")
    b.page("W2")
    return b.build()
