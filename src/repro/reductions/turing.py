"""Turing machine halting → verification (Theorem 3.7).

The theorem: with input options defined by quantifier-free formulas over
database *and state* relations (i.e. dropping the "state atoms must be
ground" restriction), verification of a *fixed* input-bounded LTL-FO
sentence becomes undecidable.  The proof encodes a TM's run:

- an **initialisation phase** uses the unary input ``I`` to pick fresh
  database elements, chaining them into a tape via the 4-ary state
  relation ``T(x, y, u, v)`` — cell ``x`` holds symbol ``u``, ``y`` is
  the next cell, and ``v`` is either a TM state (head here) or ``#``;
- a **simulation phase** uses inputs ``H`` (right/stay moves) and ``HL``
  (left moves, which also pick the predecessor cell) to advance the run;
- the machine halts iff some run makes ``T(x, y, u, h)`` hold for a
  halting state ``h``, so the fixed sentence
  ``∀x∀y∀u G ¬T(x, y, u, h)`` is violated iff the TM halts.

The encoded service is deliberately *outside* the decidable class
(:func:`repro.service.classify.classify` reports the non-ground state
atoms in its input rules); running the bounded verifier on it acts as a
semi-decider — it finds halting computations whose tape fits in the
explored domain, exactly the trade-off the theorem predicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.fol.formulas import FALSE, And, Atom, Eq, Exists, Not, Or
from repro.fol.terms import Lit, Var
from repro.ltl.ltlfo import G, LTLFOSentence
from repro.service.builder import ServiceBuilder
from repro.service.webservice import WebService

#: Marker for "no head here" in the 4th column of T.
NO_HEAD = "#"
BLANK = "_"


@dataclass(frozen=True)
class TuringMachine:
    """A deterministic, left-bounded, right-infinite-tape TM.

    ``transitions`` maps ``(state, symbol)`` to
    ``(new_state, new_symbol, move)`` with move in {"L", "R", "S"}.
    Missing entries mean the machine hangs (loops without halting).
    """

    states: frozenset[str]
    alphabet: frozenset[str]
    transitions: Mapping[tuple[str, str], tuple[str, str, str]]
    start: str = "q0"
    halting: frozenset[str] = frozenset({"halt"})

    def __post_init__(self) -> None:
        for (p, u), (q, u2, move) in self.transitions.items():
            if move not in ("L", "R", "S"):
                raise ValueError(f"bad move {move!r} in transition ({p},{u})")
            if p in self.halting:
                raise ValueError(f"halting state {p!r} has outgoing transitions")


def simulate_tm(
    tm: TuringMachine, word: str = "", max_steps: int = 10_000
) -> tuple[bool, int]:
    """Direct simulation: (halted?, steps used)."""
    tape: dict[int, str] = {i: c for i, c in enumerate(word)}
    head = 0
    state = tm.start
    for step in range(max_steps):
        if state in tm.halting:
            return True, step
        key = (state, tape.get(head, BLANK))
        if key not in tm.transitions:
            return False, step
        state, symbol, move = tm.transitions[key]
        tape[head] = symbol
        if move == "R":
            head += 1
        elif move == "L":
            head = max(0, head - 1)
    return state in tm.halting, max_steps


#: A 3-state machine halting after 5 steps on the empty word.
BUSY_BEAVER_3 = TuringMachine(
    states=frozenset({"q0", "q1", "q2", "halt"}),
    alphabet=frozenset({BLANK, "1"}),
    transitions={
        ("q0", BLANK): ("q1", "1", "R"),
        ("q1", BLANK): ("q2", "1", "R"),
        ("q2", BLANK): ("halt", "1", "S"),
    },
)

#: A machine that never halts (bounces on the first cell).
LOOPER = TuringMachine(
    states=frozenset({"q0", "halt"}),
    alphabet=frozenset({BLANK, "1"}),
    transitions={
        ("q0", BLANK): ("q0", "1", "S"),
        ("q0", "1"): ("q0", BLANK, "S"),
    },
)


def _lits(*values: str) -> tuple:
    return tuple(Lit(v) for v in values)


def tm_to_service(tm: TuringMachine, name: str = "tm-service") -> WebService:
    """The Theorem 3.7 encoding of a Turing machine.

    The resulting service is input-bounded *except* for the non-ground
    state atoms in its input-option rules — the precise relaxation the
    theorem proves fatal.
    """
    b = ServiceBuilder(name)
    b.database("D", 1)
    b.db_constant("min")
    b.state("T", 4).state("Cell", 1).state("Max", 1).state("Head", 1)
    b.state("initialized").state("simul")
    b.input("I", 1).input("H", 4).input("HL", 6)

    page = b.page("W", home=True)
    x, y, u, p = Var("x"), Var("y"), Var("u"), Var("p")
    w, uw = Var("w"), Var("uw")

    # ---- initialisation phase ------------------------------------------
    page.options(
        "I",
        And(
            Atom("D", (y,)),
            Not(Eq(y, _db_min())),
            Not(Atom("Cell", (y,))),
            Not(Atom("simul", ())),
        ),
        ("y",),
    )
    not_init = Not(Atom("initialized", ()))
    i_y = Atom("I", (y,))
    # First input: create the head cell  T(min, y, blank, q0).
    page.insert(
        "T",
        Exists(
            "y",
            And(
                i_y,
                not_init,
                Eq(Var("a"), _db_min()),
                Eq(Var("b"), y),
                Eq(Var("c"), Lit(BLANK)),
                Eq(Var("d"), Lit(tm.start)),
            ),
        ),
        variables=("a", "b", "c", "d"),
    )
    page.insert("Cell", And(Eq(Var("c1"), _db_min()), not_init), ("c1",))
    page.insert("Head", And(Eq(Var("c1"), _db_min()), not_init), ("c1",))
    page.insert("initialized", not_init)
    # Tape extension: new cell y chained after the current Max x.
    page.insert(
        "T",
        Exists(
            ("y", "x"),
            And(
                i_y,
                Atom("Max", (x,)),
                Eq(Var("a"), x),
                Eq(Var("b"), y),
                Eq(Var("c"), Lit(BLANK)),
                Eq(Var("d"), Lit(NO_HEAD)),
                Atom("initialized", ()),
            ),
        ),
        variables=("a", "b", "c", "d"),
    )
    page.insert("Cell", Atom("I", (Var("c1"),)), ("c1",))
    page.delete(
        "Max",
        Exists("y", And(i_y, Atom("Max", (Var("m1"),)))),
        ("m1",),
    )
    page.insert("Max", Atom("I", (Var("m1"),)), ("m1",))
    # Empty input (or exhausted domain) switches to the simulation phase.
    page.insert("simul", Not(Exists("y", i_y)))

    # ---- simulation phase ------------------------------------------------
    simul = Atom("simul", ())
    head_x = Atom("Head", (x,))
    t_xyup = Atom("T", (x, y, u, p))

    # Right/stay moves use H(x, y, u, p): the head tuple.
    right_stay = [
        (key, out)
        for key, out in tm.transitions.items()
        if out[2] in ("R", "S")
    ]
    left = [(key, out) for key, out in tm.transitions.items() if out[2] == "L"]

    h_options_parts = []
    for (pstate, symbol), _out in right_stay:
        h_options_parts.append(
            And(
                simul,
                Atom("Head", (x,)),
                Atom("T", (x, y, Lit(symbol), Lit(pstate))),
                Eq(u, Lit(symbol)),
                Eq(p, Lit(pstate)),
            )
        )
    if h_options_parts:
        page.options("H", Or(h_options_parts), ("x", "y", "u", "p"))
    else:
        page.options("H", FALSE, ("x", "y", "u", "p"))

    hl_options_parts = []
    for (pstate, symbol), _out in left:
        hl_options_parts.append(
            And(
                simul,
                Atom("Head", (x,)),
                Atom("T", (x, y, Lit(symbol), Lit(pstate))),
                Atom("T", (w, x, uw, Lit(NO_HEAD))),
                Eq(u, Lit(symbol)),
                Eq(p, Lit(pstate)),
            )
        )
    if hl_options_parts:
        page.options("HL", Or(hl_options_parts), ("w", "uw", "x", "y", "u", "p"))
    else:
        page.options("HL", FALSE, ("w", "uw", "x", "y", "u", "p"))

    # Per-transition update rules.
    a4 = tuple(Var(v) for v in ("a", "b", "c", "d"))
    for (pstate, symbol), (qstate, symbol2, move) in right_stay:
        h_match = And(
            simul, Atom("H", (x, y, Lit(symbol), Lit(pstate)))
        )
        # overwrite the head cell
        page.delete(
            "T",
            Exists(
                ("x", "y"),
                And(
                    h_match,
                    Eq(a4[0], x), Eq(a4[1], y),
                    Eq(a4[2], Lit(symbol)), Eq(a4[3], Lit(pstate)),
                ),
            ),
            ("a", "b", "c", "d"),
        )
        if move == "S":
            page.insert(
                "T",
                Exists(
                    ("x", "y"),
                    And(
                        h_match,
                        Eq(a4[0], x), Eq(a4[1], y),
                        Eq(a4[2], Lit(symbol2)), Eq(a4[3], Lit(qstate)),
                    ),
                ),
                ("a", "b", "c", "d"),
            )
        else:  # move right
            page.insert(
                "T",
                Exists(
                    ("x", "y"),
                    And(
                        h_match,
                        Eq(a4[0], x), Eq(a4[1], y),
                        Eq(a4[2], Lit(symbol2)), Eq(a4[3], Lit(NO_HEAD)),
                    ),
                ),
                ("a", "b", "c", "d"),
            )
            # hand the head to the next cell
            page.delete(
                "T",
                Exists(
                    ("x", "y"),
                    And(
                        h_match,
                        Atom("T", (y, a4[1], a4[2], Lit(NO_HEAD))),
                        Eq(a4[0], y), Eq(a4[3], Lit(NO_HEAD)),
                    ),
                ),
                ("a", "b", "c", "d"),
            )
            page.insert(
                "T",
                Exists(
                    ("x", "y"),
                    And(
                        h_match,
                        Atom("T", (y, a4[1], a4[2], Lit(NO_HEAD))),
                        Eq(a4[0], y), Eq(a4[3], Lit(qstate)),
                    ),
                ),
                ("a", "b", "c", "d"),
            )
            page.delete(
                "Head",
                Exists("y", And(
                    simul,
                    Atom("H", (Var("h1"), y, Lit(symbol), Lit(pstate))),
                )),
                ("h1",),
            )
            page.insert(
                "Head",
                Exists("x", And(
                    simul,
                    Atom("H", (x, Var("h1"), Lit(symbol), Lit(pstate))),
                )),
                ("h1",),
            )

    for (pstate, symbol), (qstate, symbol2, _move) in left:
        hl_match = And(
            simul,
            Atom("HL", (w, uw, x, y, Lit(symbol), Lit(pstate))),
        )
        page.delete(
            "T",
            Exists(
                ("w", "uw", "x", "y"),
                And(
                    hl_match,
                    Eq(a4[0], x), Eq(a4[1], y),
                    Eq(a4[2], Lit(symbol)), Eq(a4[3], Lit(pstate)),
                ),
            ),
            ("a", "b", "c", "d"),
        )
        page.insert(
            "T",
            Exists(
                ("w", "uw", "x", "y"),
                And(
                    hl_match,
                    Eq(a4[0], x), Eq(a4[1], y),
                    Eq(a4[2], Lit(symbol2)), Eq(a4[3], Lit(NO_HEAD)),
                ),
            ),
            ("a", "b", "c", "d"),
        )
        page.delete(
            "T",
            Exists(
                ("w", "uw", "x", "y"),
                And(
                    hl_match,
                    Eq(a4[0], w), Eq(a4[1], x),
                    Eq(a4[2], uw), Eq(a4[3], Lit(NO_HEAD)),
                ),
            ),
            ("a", "b", "c", "d"),
        )
        page.insert(
            "T",
            Exists(
                ("w", "uw", "x", "y"),
                And(
                    hl_match,
                    Eq(a4[0], w), Eq(a4[1], x),
                    Eq(a4[2], uw), Eq(a4[3], Lit(qstate)),
                ),
            ),
            ("a", "b", "c", "d"),
        )
        page.delete(
            "Head",
            Exists(("w", "uw", "y"), And(
                simul,
                Atom("HL", (w, uw, Var("h1"), y, Lit(symbol), Lit(pstate))),
            )),
            ("h1",),
        )
        page.insert(
            "Head",
            Exists(("uw", "x", "y"), And(
                simul,
                Atom("HL", (Var("h1"), uw, x, y, Lit(symbol), Lit(pstate))),
            )),
            ("h1",),
        )

    return b.build()


def _db_min():
    from repro.fol.terms import DbConst

    return DbConst("min")


def halting_sentence(tm: TuringMachine) -> LTLFOSentence:
    """``∀x∀y∀u G ¬T(x, y, u, h)`` over all halting states ``h``.

    Expressed in the equivalent closure-free form
    ``G ¬∃x∃y∃u T(x, y, u, h)`` (pushing the universal closure through
    ``G`` and the negation), which spares the verifier the cubic
    grounding of the closure variables.  The encoded service satisfies
    this sentence iff the machine does not halt (on the empty word), so
    a verification *violation* is a halting certificate.
    """
    parts = [
        Not(
            Exists(
                ("x", "y", "u"),
                Atom("T", (Var("x"), Var("y"), Var("u"), Lit(h))),
            )
        )
        for h in sorted(tm.halting)
    ]
    return LTLFOSentence(
        (),
        G(And(parts)),
        name="TM never halts",
    )
