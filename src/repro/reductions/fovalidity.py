"""∃*∀* FO validity → CTL-FO verification (Theorem 4.2).

Input-bounded *linear-time* verification is decidable (Theorem 3.5), but
adding path quantifiers breaks it: path quantification can simulate
first-order quantification by branching over runs that supply candidate
values as inputs.  The proof encodes finite validity of sentences in the
prefix class ∃*∀* (undecidable, Börger-Grädel-Gurevich) into a CTL-FO
verification question over a *simple* input-bounded service.

This module ships both ends of the reduction for the single-variable
illustrative case in the paper's proof (one ∃ and one ∀ variable over a
binary matrix ψ):

- :func:`exists_forall_validity` — finite validity of ``∃x∀y ψ(x, y)``
  by brute force up to a domain bound (ground truth for tests; note
  ∃*∀* sentences have the finite-model property *for refutation* —
  validity overall is what is undecidable);
- :func:`validity_to_service` — the Theorem 4.2 service: the first two
  steps of a run let the user input a value for ``x`` and then a value
  for ``y``; the state proposition ``true_psi`` then records ψ(x, y).
  The CTL-FO sentence ``EX AX AX true_psi`` holds iff ``∃x∀y ψ`` is
  finitely valid.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence

from repro.fol.analysis import free_variables
from repro.fol.formulas import And, Atom, Exists, Formula, Not
from repro.fol.terms import Var
from repro.service.builder import ServiceBuilder
from repro.service.webservice import WebService

Value = Hashable


def exists_forall_validity(
    psi: Callable[[Sequence[Value], Value, Value], bool],
    max_domain: int,
) -> bool:
    """Finite validity of ``∃x∀y ψ(x, y)`` over domains up to a bound.

    ``psi(domain, x, y)`` decides the matrix on an abstract domain; the
    caller encodes any relational structure inside it.  Returns False as
    soon as some finite structure refutes the sentence.
    """
    for n in range(1, max_domain + 1):
        domain = list(range(n))
        if not any(
            all(psi(domain, x, y) for y in domain) for x in domain
        ):
            return False
    return True


def validity_to_service(
    psi: Formula,
    name: str = "validity-service",
) -> WebService:
    """The Theorem 4.2 service for a quantifier-free ψ(x, y) over the
    unary database relation ``R`` (and equalities).

    Run shape: step 0 picks ``x`` (input ``X``), step 1 re-confirms it
    and picks ``y`` (input ``Y``), step 2 raises ``true_psi`` when
    ψ holds of the chosen pair.  The CTL-FO sentence ``EX AX AX
    true_psi`` (a propositional CTL formula over the abstracted states)
    then asserts ∃x∀y ψ — which is why its verification cannot be
    decidable.
    """
    free = free_variables(psi)
    if not free <= {"x", "y"}:
        raise ValueError(f"psi must use only x and y, found {sorted(free)}")

    b = ServiceBuilder(name)
    b.database("R", 1)
    b.input("X", 1).input("Y", 1)
    b.state("donex").state("true_psi")

    page = b.page("W", home=True)
    x, y = Var("x"), Var("y")
    # The proof stores the x-choice in a state relation S_X; reading it
    # back in the option rule would use a non-ground state atom, so we
    # carry the choice through prev_X instead (an equivalent mechanism
    # the model provides for exactly this, and it keeps the service
    # input-bounded in the strict §3 sense).
    page.options(
        "X",
        (And(Atom("R", (x,)), Not(Atom("donex", ()))))
        | (And(Atom("donex", ()), Atom("prev_X", (x,)))),
        ("x",),
    )
    page.options(
        "Y",
        And(Atom("donex", ()), Atom("R", (y,))),
        ("y",),
    )
    page.insert("donex", Not(Atom("donex", ())))
    page.insert(
        "true_psi",
        Exists(
            "x",
            And(
                Atom("X", (x,)),
                Exists("y", And(Atom("Y", (y,)), psi)),
            ),
        ),
    )
    return b.build()
