"""Deterministic fault injection for the verification engine.

A fault-tolerant verifier is only trustworthy if its failure paths are
*tested* paths, and failure paths are untestable unless failures can be
produced on demand, at a known place, on every run.  This module is that
switchboard: a :class:`FaultPlan` names the faults to inject — each one
keyed by the ``(db_index, sigma_index)`` work-unit cursor it strikes at
and the attempt numbers it strikes on — and a :class:`FaultInjector`
performs them at the two injection sites the engine exposes:

- ``unit`` — just before a work unit's checker runs (in the worker
  process under the pool backend, in-process under the sequential one);
- ``checkpoint`` — between the temp-file write and the ``os.replace``
  of an atomic checkpoint write, simulating a kill at the worst moment.

Fault kinds (``FaultSpec.kind``):

``error``
    Raise :class:`InjectedFault` — a transient worker exception, the
    shape of an OOM kill of a helper, a flaky NFS read, a cosmic ray.
    Exercises the retry/backoff path.
``crash``
    ``os._exit(13)`` — the worker process dies without unwinding, the
    way a segfault or an external SIGKILL looks to the parent
    (``BrokenProcessPool``).  Under the sequential backend this is
    downgraded to ``error`` (killing the caller's own process would
    take the test harness with it).
``hang``
    Sleep for ``delay_s`` (default 30s) — a stuck unit.  Exercises the
    per-unit wall-clock timeout and pool-rebuild path.
``slow``
    Sleep for ``delay_s`` (default 0.05s) — a straggler that should
    *not* trip supervision.
``checkpoint``
    Raise :class:`CheckpointWriteInterrupted` mid-write at the
    ``checkpoint`` site.  Exercises write atomicity: the previous
    checkpoint file must survive intact.

Determinism: a fault fires iff its cursor matches and the unit's
``attempt`` number is below ``times`` (-1 means every attempt), so the
same plan produces the same failure schedule on every run, at every
worker count — and retried attempts beyond ``times`` succeed, which is
what lets a test assert "transient fault, same final verdict".  The
plan's ``seed`` feeds the retry backoff jitter so even the timing
schedule is reproducible.

Plans come from ``verify(..., faults=)`` (a :class:`FaultPlan`, a dict,
or a JSON string) or from the ``REPRO_FAULTS`` environment variable
(inline JSON, or ``@path`` to a JSON file) — the latter is how CI runs
an entire test suite under a standing fault plan.  Every injected fault
is announced as a ``fault.injected`` trace event through
:mod:`repro.obs` by the *parent* process (the worker may die before it
could ship the event home).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "FaultInjector",
    "InjectedFault",
    "CheckpointWriteInterrupted",
    "resolve_fault_plan",
]

#: the recognised values of FaultSpec.kind
FAULT_KINDS = ("error", "crash", "hang", "slow", "checkpoint")

#: default sleep durations for the time-based kinds
_DEFAULT_DELAYS = {"hang": 30.0, "slow": 0.05}


class FaultPlanError(ValueError):
    """A fault plan could not be parsed; the message names the field."""


class InjectedFault(RuntimeError):
    """The transient worker failure raised by ``error`` faults.

    Deliberately a plain ``RuntimeError`` subclass: the supervision
    layer must treat it exactly like any unexpected worker exception —
    no special-casing, or the tests would be testing the test harness.
    """

    def __init__(self, cursor: tuple[int, int], attempt: int) -> None:
        super().__init__(
            f"injected fault at cursor {cursor} (attempt {attempt})"
        )
        self.cursor = cursor
        self.attempt = attempt

    def __reduce__(self):
        # exceptions cross the process-pool boundary pickled; the default
        # reduction would replay __init__ with the message string only
        return (InjectedFault, (self.cursor, self.attempt))


class CheckpointWriteInterrupted(RuntimeError):
    """An atomic checkpoint write was interrupted between temp and replace.

    The temp file is left behind (a killed process could not have
    cleaned it up either); the destination file is untouched.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One fault: where it strikes, what it does, how often it fires.

    ``times`` is the number of *attempts* of the unit the fault fires
    on: with the default 1 it fires on attempt 0 only, so the first
    retry succeeds (a transient fault); -1 fires on every attempt (a
    persistent fault — the quarantine path).
    """

    kind: str
    db_index: int
    sigma_index: int = 0
    times: int = 1
    delay_s: float | None = None

    @property
    def cursor(self) -> tuple[int, int]:
        return (self.db_index, self.sigma_index)

    def fires_on(self, attempt: int) -> bool:
        return self.times < 0 or attempt < self.times

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "kind": self.kind,
            "db_index": self.db_index,
            "sigma_index": self.sigma_index,
        }
        if self.times != 1:
            out["times"] = self.times
        if self.delay_s is not None:
            out["delay_s"] = self.delay_s
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], *, index: int = 0) -> "FaultSpec":
        where = f"faults[{index}]"
        if not isinstance(data, Mapping):
            raise FaultPlanError(
                f"{where} must be an object, got {type(data).__name__}"
            )
        kind = data.get("kind")
        if kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"{where}.kind must be one of {', '.join(FAULT_KINDS)}; "
                f"got {kind!r}"
            )
        out: dict[str, Any] = {"kind": kind}
        for name, default in (
            ("db_index", None), ("sigma_index", 0), ("times", 1),
        ):
            value = data.get(name, default)
            if name == "db_index" and value is None:
                raise FaultPlanError(f"{where}.db_index is required")
            if not isinstance(value, int) or isinstance(value, bool):
                raise FaultPlanError(
                    f"{where}.{name} must be an integer, got {value!r}"
                )
            out[name] = value
        delay = data.get("delay_s")
        if delay is not None:
            if not isinstance(delay, (int, float)) or isinstance(delay, bool):
                raise FaultPlanError(
                    f"{where}.delay_s must be a number, got {delay!r}"
                )
            out["delay_s"] = float(delay)
        unknown = set(data) - {"kind", "db_index", "sigma_index", "times",
                               "delay_s"}
        if unknown:
            raise FaultPlanError(
                f"{where} has unknown key(s): {', '.join(sorted(unknown))}"
            )
        return cls(**out)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of faults plus the seed for backoff jitter.

    Immutable and picklable: the plan ships to pool workers inside the
    :class:`~repro.verifier.parallel.TaskSpec`, and matching is a pure
    function of ``(site, cursor, attempt)`` — no hidden counter state
    that could drift between the parent and a worker, or between a
    first run and its resume.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __bool__(self) -> bool:
        return bool(self.specs)

    def match(
        self, site: str, cursor: tuple[int, int], attempt: int = 0
    ) -> FaultSpec | None:
        """The first fault that fires at this site/cursor/attempt, if any."""
        for spec in self.specs:
            if spec.cursor != cursor or not spec.fires_on(attempt):
                continue
            if (spec.kind == "checkpoint") != (site == "checkpoint"):
                continue
            return spec
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(data, Mapping):
            raise FaultPlanError(
                f"fault plan must be an object, got {type(data).__name__}"
            )
        seed = data.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise FaultPlanError(f"seed must be an integer, got {seed!r}")
        raw = data.get("faults", [])
        if not isinstance(raw, (list, tuple)):
            raise FaultPlanError(
                f"faults must be a list, got {type(raw).__name__}"
            )
        unknown = set(data) - {"seed", "faults"}
        if unknown:
            raise FaultPlanError(
                f"fault plan has unknown key(s): {', '.join(sorted(unknown))}"
            )
        specs = tuple(
            FaultSpec.from_dict(item, index=i) for i, item in enumerate(raw)
        )
        return cls(specs=specs, seed=seed)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from None
        return cls.from_dict(data)


def resolve_fault_plan(faults: Any = None) -> FaultPlan | None:
    """The effective fault plan for one verification call.

    An explicitly passed value wins (a :class:`FaultPlan`, a dict, a
    JSON string, or ``@path`` to a JSON file); otherwise ``REPRO_FAULTS``
    in the environment supplies one for the whole process, and finally
    None — the zero-overhead default: with no plan, the engine's
    injection sites are a single ``is None`` check.
    """
    if faults is None:
        raw = os.environ.get("REPRO_FAULTS", "").strip()
        if not raw:
            return None
        faults = raw
    if isinstance(faults, FaultPlan):
        return faults if faults else None
    if isinstance(faults, Mapping):
        return FaultPlan.from_dict(faults) or None
    if isinstance(faults, str):
        text = faults.strip()
        if text.startswith("@"):
            path = Path(text[1:])
            try:
                text = path.read_text()
            except OSError as exc:
                raise FaultPlanError(
                    f"cannot read fault plan file {path}: {exc}"
                ) from None
        return FaultPlan.from_json(text) or None
    raise FaultPlanError(
        "faults= accepts a FaultPlan, a dict, a JSON string, or '@path'; "
        f"got {type(faults).__name__}"
    )


@dataclass
class FaultInjector:
    """Performs the faults of one plan at the engine's injection sites.

    ``in_worker`` says whether this injector runs inside a disposable
    pool worker: only there may a ``crash`` fault actually kill the
    process.  In the parent (sequential backend, checkpoint writes) a
    crash is downgraded to an :class:`InjectedFault` so the test
    harness survives.
    """

    plan: FaultPlan
    in_worker: bool = False
    #: seam for tests — patched to avoid real sleeps
    _sleep: Any = field(default=time.sleep, repr=False)

    def fire_unit(self, cursor: tuple[int, int], attempt: int) -> None:
        """Perform the matching unit-site fault, if any."""
        spec = self.plan.match("unit", cursor, attempt)
        if spec is None:
            return
        if spec.kind == "crash" and self.in_worker:
            os._exit(13)
        if spec.kind in ("error", "crash"):
            raise InjectedFault(cursor, attempt)
        if spec.kind in ("hang", "slow"):
            delay = spec.delay_s
            if delay is None:
                delay = _DEFAULT_DELAYS[spec.kind]
            self._sleep(delay)

    def checkpoint_interrupt(self, cursor: tuple[int, int]) -> None:
        """Raise mid-atomic-write when a ``checkpoint`` fault matches."""
        spec = self.plan.match("checkpoint", cursor, 0)
        if spec is not None:
            raise CheckpointWriteInterrupted(
                f"injected checkpoint-write interruption at cursor {cursor}"
            )


def iter_fault_events(
    plan: FaultPlan | None,
    site: str,
    cursor: tuple[int, int],
    attempt: int,
) -> Iterable[dict[str, Any]]:
    """The ``fault.injected`` event fields for a (site, cursor, attempt).

    Emitted by the *parent* process before the fault is performed —
    a crashing worker cannot ship its own trace events home.
    """
    if plan is None:
        return
    spec = plan.match(site, cursor, attempt)
    if spec is not None:
        yield {"kind": spec.kind, "attempt": attempt, "site": site}
