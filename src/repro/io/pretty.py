"""Render specifications in the paper's page-listing layout.

Mirrors the presentation of Example 2.2::

    Page HP
      Inputs: name, password, button(x)
      Input Rules:
        Options_button(x) <- x = "login" | ...
      State Rules:
        error(m) <- ...
      Target Rules:
        CP <- user(name, password) & button("login")
    End Page HP
"""

from __future__ import annotations

from repro.service.page import WebPageSchema
from repro.service.webservice import WebService


def page_to_text(service: WebService, page: WebPageSchema) -> str:
    """Render one page schema."""
    lines = [f"Page {page.name}"]
    input_bits = list(page.input_constants)
    for name in page.inputs:
        sym = service.schema.input[name]
        if sym.arity == 0:
            input_bits.append(name)
        else:
            args = ", ".join(f"x{i+1}" for i in range(sym.arity))
            input_bits.append(f"{name}({args})")
    if input_bits:
        lines.append("  Inputs: " + ", ".join(input_bits))
    if page.input_rules:
        lines.append("  Input Rules:")
        for rule in page.input_rules:
            head_vars = ", ".join(rule.variables)
            lines.append(f"    Options_{rule.input}({head_vars}) <- {rule.formula}")
    if page.state_rules:
        lines.append("  State Rules:")
        for srule in page.state_rules:
            head = (
                f"{srule.state}({', '.join(srule.variables)})"
                if srule.variables
                else srule.state
            )
            sign = "" if srule.insert else "not "
            lines.append(f"    {sign}{head} <- {srule.formula}")
    if page.action_rules:
        lines.append("  Action Rules:")
        for arule in page.action_rules:
            head = (
                f"{arule.action}({', '.join(arule.variables)})"
                if arule.variables
                else arule.action
            )
            lines.append(f"    {head} <- {arule.formula}")
    if page.target_rules:
        lines.append("  Target Rules:")
        for trule in page.target_rules:
            lines.append(f"    {trule.target} <- {trule.formula}")
    lines.append(f"End Page {page.name}")
    return "\n".join(lines)


def service_to_text(service: WebService) -> str:
    """Render the whole specification, schemas first."""
    schema = service.schema
    lines = [f"Web service {service.name!r}"]
    lines.append(
        "  database schema: "
        + ", ".join(str(r) for r in schema.database)
        + (
            f" ; constants: {', '.join(sorted(schema.database.constants))}"
            if schema.database.constants
            else ""
        )
    )
    lines.append("  state schema:    " + ", ".join(str(r) for r in schema.state))
    lines.append(
        "  input schema:    "
        + ", ".join(str(r) for r in schema.input)
        + (
            f" ; input constants: {', '.join(sorted(schema.input_constants))}"
            if schema.input_constants
            else ""
        )
    )
    if len(schema.action):
        lines.append("  action schema:   " + ", ".join(str(r) for r in schema.action))
    lines.append(f"  home page: {service.home}; error page: {service.error_page}")
    lines.append("")
    for page in service.pages.values():
        lines.append(page_to_text(service, page))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
