"""JSON serialization of services and databases.

Formulas are stored as text in the :mod:`repro.fol.parser` syntax; the
printers in :mod:`repro.fol.formulas` emit exactly that syntax, so
``parse(str(formula)) == formula`` and serialization round-trips (the
property tests check this).  Domain values must be JSON-representable
(strings/numbers) — the whole library uses strings in practice.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from repro.fol.parser import parse_formula
from repro.schema.database import Database
from repro.schema.schema import RelationalSchema, ServiceSchema
from repro.schema.symbols import RelationKind, RelationSymbol
from repro.service.page import WebPageSchema
from repro.service.rules import ActionRule, InputRule, StateRule, TargetRule
from repro.service.webservice import WebService

_KINDS = {
    "database": RelationKind.DATABASE,
    "state": RelationKind.STATE,
    "input": RelationKind.INPUT,
    "action": RelationKind.ACTION,
}


class SpecFormatError(ValueError):
    """A malformed service/database JSON payload.

    Coded and located: ``code`` is a stable machine-readable slug (see
    the table below) and ``path`` points at the offending key in the
    payload, e.g. ``pages[2].input_rules[0].formula``.  The CLI prints
    one line and exits 2; the HTTP server maps it to a structured 400
    body.  Raised instead of the raw ``KeyError``/``TypeError``/
    ``JSONDecodeError``/parser exceptions that used to leak out of
    :func:`service_from_dict` as tracebacks.

    Codes:

    - ``bad-json`` — the payload is not valid JSON at all;
    - ``not-an-object`` — the payload (or a sub-object) is not a JSON
      object where one is required;
    - ``bad-format-tag`` — missing or unsupported ``format`` tag;
    - ``missing-key`` — a required key is absent;
    - ``bad-type`` — a value has the wrong JSON type;
    - ``bad-relation`` — a schema relation entry is not a
      ``[name, arity]`` pair with a non-negative integer arity;
    - ``bad-formula`` — a rule formula does not parse in the
      :mod:`repro.fol.parser` syntax;
    - ``unknown-key`` — an unrecognized key under ``strict=True``
      (the server's default: silently-ignored keys are how typos in
      hand-written payloads go unnoticed);
    - ``bad-database`` — database facts/constants that do not fit the
      service's database schema.
    """

    def __init__(self, message: str, *, code: str = "bad-payload",
                 path: str = "") -> None:
        super().__init__(message)
        self.code = code
        self.path = path

    def __str__(self) -> str:
        base = super().__str__()
        return f"{self.path}: {base}" if self.path else base


def _join(path: str, key: str) -> str:
    return f"{path}.{key}" if path else key


def _require(data: dict, key: str, path: str):
    if key not in data:
        raise SpecFormatError(
            f"missing required key {key!r}", code="missing-key",
            path=_join(path, key),
        )
    return data[key]


def _typed(value, types, path: str, what: str):
    if not isinstance(value, types) or isinstance(value, bool):
        raise SpecFormatError(
            f"expected {what}, got {type(value).__name__}",
            code="bad-type", path=path,
        )
    return value


def _object(value, path: str) -> dict:
    if not isinstance(value, dict):
        raise SpecFormatError(
            f"expected a JSON object, got {type(value).__name__}",
            code="not-an-object", path=path,
        )
    return value


def _str_list(value, path: str) -> list:
    _typed(value, list, path, "a list of strings")
    for i, item in enumerate(value):
        _typed(item, str, f"{path}[{i}]", "a string")
    return value


def _reject_unknown(data: dict, allowed: frozenset, path: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise SpecFormatError(
            f"unknown key{'s' if len(unknown) > 1 else ''} "
            f"{', '.join(repr(k) for k in unknown)} (strict mode; "
            f"allowed: {', '.join(sorted(allowed))})",
            code="unknown-key", path=_join(path, unknown[0]),
        )


def _wire_formula(text, path: str):
    from repro.fol.parser import FormulaSyntaxError

    # @/# sigils in the serialized text disambiguate constants, so no
    # constant sets need to be passed to the parser.
    _typed(text, str, path, "a formula string")
    try:
        return parse_formula(text)
    except FormulaSyntaxError as exc:
        raise SpecFormatError(
            f"unparseable formula: {exc}", code="bad-formula", path=path,
        ) from exc


def _schema_to_dict(schema: RelationalSchema) -> dict:
    return {
        "relations": [[r.name, r.arity] for r in sorted(schema.relations)],
        "constants": sorted(schema.constants),
    }


_SCHEMA_KEYS = frozenset({"relations", "constants"})


def _schema_from_dict(
    data: dict, kind: RelationKind, path: str = "", strict: bool = False
) -> RelationalSchema:
    _object(data, path)
    if strict:
        _reject_unknown(data, _SCHEMA_KEYS, path)
    relations = []
    for i, entry in enumerate(data.get("relations", [])):
        entry_path = f"{_join(path, 'relations')}[{i}]"
        _typed(entry, list, entry_path, "a [name, arity] pair")
        if len(entry) != 2:
            raise SpecFormatError(
                f"relation entry must be a [name, arity] pair, "
                f"got {len(entry)} element(s)",
                code="bad-relation", path=entry_path,
            )
        name, arity = entry
        _typed(name, str, f"{entry_path}[0]", "a relation name string")
        _typed(arity, int, f"{entry_path}[1]", "an integer arity")
        try:
            relations.append(RelationSymbol(name, arity, kind))
        except ValueError as exc:
            raise SpecFormatError(
                str(exc), code="bad-relation", path=entry_path,
            ) from exc
    constants = _str_list(
        data.get("constants", []), _join(path, "constants")
    )
    return RelationalSchema(relations, constants)


def service_to_dict(service: WebService) -> dict:
    """Serialize a Web service to a JSON-ready dict."""
    schema = service.schema
    return {
        "format": "repro.webservice/1",
        "name": service.name,
        "home": service.home,
        "error_page": service.error_page,
        "schema": {
            "database": _schema_to_dict(schema.database),
            "state": _schema_to_dict(schema.state),
            "input": _schema_to_dict(schema.input),
            "action": _schema_to_dict(schema.action),
        },
        "pages": [_page_to_dict(page) for page in service.pages.values()],
    }


def _page_to_dict(page: WebPageSchema) -> dict:
    return {
        "name": page.name,
        "inputs": list(page.inputs),
        "input_constants": list(page.input_constants),
        "actions": list(page.actions),
        "targets": list(page.targets),
        "input_rules": [
            {"input": r.input, "variables": list(r.variables),
             "formula": str(r.formula)}
            for r in page.input_rules
        ],
        "state_rules": [
            {"state": r.state, "insert": r.insert,
             "variables": list(r.variables), "formula": str(r.formula)}
            for r in page.state_rules
        ],
        "action_rules": [
            {"action": r.action, "variables": list(r.variables),
             "formula": str(r.formula)}
            for r in page.action_rules
        ],
        "target_rules": [
            {"target": r.target, "formula": str(r.formula)}
            for r in page.target_rules
        ],
    }


_TOP_KEYS = frozenset({
    "format", "name", "home", "error_page", "schema", "pages",
})
_PAGE_KEYS = frozenset({
    "name", "inputs", "input_constants", "actions", "targets",
    "input_rules", "state_rules", "action_rules", "target_rules",
})
_INPUT_RULE_KEYS = frozenset({"input", "variables", "formula"})
_STATE_RULE_KEYS = frozenset({"state", "insert", "variables", "formula"})
_ACTION_RULE_KEYS = frozenset({"action", "variables", "formula"})
_TARGET_RULE_KEYS = frozenset({"target", "formula"})


def _rule_rows(pd: dict, key: str, page_path: str, strict: bool,
               allowed: frozenset):
    """The (row, row_path) pairs of one rule list, each type-checked."""
    rows = _typed(
        pd.get(key, []), list, _join(page_path, key), "a list of rules"
    )
    out = []
    for i, row in enumerate(rows):
        row_path = f"{_join(page_path, key)}[{i}]"
        _object(row, row_path)
        if strict:
            _reject_unknown(row, allowed, row_path)
        out.append((row, row_path))
    return out


def _variables(row: dict, row_path: str) -> tuple:
    return tuple(
        _str_list(_require(row, "variables", row_path),
                  _join(row_path, "variables"))
    )


def service_from_dict(data: dict, *, strict: bool = False) -> WebService:
    """Rebuild a Web service from :func:`service_to_dict` output.

    Malformed payloads raise :class:`SpecFormatError` with a stable
    ``code`` and the ``path`` of the offending key — never a raw
    ``KeyError``/``TypeError`` traceback.  With ``strict=True`` (the
    HTTP server's default) unknown keys are rejected too, and the
    round-trip invariant ``service_to_dict(service_from_dict(d)) == d``
    holds for every accepted payload.
    """
    _object(data, "")
    if data.get("format") != "repro.webservice/1":
        raise SpecFormatError(
            f"unsupported or missing format tag: {data.get('format')!r} "
            "(expected 'repro.webservice/1')",
            code="bad-format-tag", path="format",
        )
    if strict:
        _reject_unknown(data, _TOP_KEYS, "")
    schema_data = _object(_require(data, "schema", ""), "schema")
    if strict:
        _reject_unknown(schema_data, frozenset(_KINDS), "schema")
    parts = {}
    for part, kind in _KINDS.items():
        parts[part] = _schema_from_dict(
            _require(schema_data, part, "schema"), kind,
            path=_join("schema", part), strict=strict,
        )
    schema = ServiceSchema(
        database=parts["database"], state=parts["state"],
        input=parts["input"], action=parts["action"],
    )

    pages = []
    pages_data = _typed(
        _require(data, "pages", ""), list, "pages", "a list of pages"
    )
    for idx, pd in enumerate(pages_data):
        page_path = f"pages[{idx}]"
        _object(pd, page_path)
        if strict:
            _reject_unknown(pd, _PAGE_KEYS, page_path)
        input_rules = [
            InputRule(
                _typed(_require(r, "input", p), str,
                       _join(p, "input"), "an input relation name"),
                _variables(r, p),
                _wire_formula(_require(r, "formula", p),
                              _join(p, "formula")),
            )
            for r, p in _rule_rows(pd, "input_rules", page_path, strict,
                                   _INPUT_RULE_KEYS)
        ]
        state_rules = []
        for r, p in _rule_rows(pd, "state_rules", page_path, strict,
                               _STATE_RULE_KEYS):
            insert = r.get("insert", True)
            if not isinstance(insert, bool):
                raise SpecFormatError(
                    f"expected a boolean, got {type(insert).__name__}",
                    code="bad-type", path=_join(p, "insert"),
                )
            state_rules.append(
                StateRule(
                    _typed(_require(r, "state", p), str,
                           _join(p, "state"), "a state relation name"),
                    _variables(r, p),
                    _wire_formula(_require(r, "formula", p),
                                  _join(p, "formula")),
                    insert=insert,
                )
            )
        action_rules = [
            ActionRule(
                _typed(_require(r, "action", p), str,
                       _join(p, "action"), "an action relation name"),
                _variables(r, p),
                _wire_formula(_require(r, "formula", p),
                              _join(p, "formula")),
            )
            for r, p in _rule_rows(pd, "action_rules", page_path, strict,
                                   _ACTION_RULE_KEYS)
        ]
        target_rules = [
            TargetRule(
                _typed(_require(r, "target", p), str,
                       _join(p, "target"), "a target page name"),
                _wire_formula(_require(r, "formula", p),
                              _join(p, "formula")),
            )
            for r, p in _rule_rows(pd, "target_rules", page_path, strict,
                                   _TARGET_RULE_KEYS)
        ]
        pages.append(
            WebPageSchema(
                name=_typed(_require(pd, "name", page_path), str,
                            _join(page_path, "name"), "a page name string"),
                inputs=_str_list(pd.get("inputs", []),
                                 _join(page_path, "inputs")),
                input_constants=_str_list(
                    pd.get("input_constants", []),
                    _join(page_path, "input_constants")),
                actions=_str_list(pd.get("actions", []),
                                  _join(page_path, "actions")),
                targets=_str_list(pd.get("targets", []),
                                  _join(page_path, "targets")),
                input_rules=input_rules,
                state_rules=state_rules,
                action_rules=action_rules,
                target_rules=target_rules,
            )
        )
    return WebService(
        schema,
        pages,
        home=_typed(_require(data, "home", ""), str, "home",
                    "a page name string"),
        error_page=_typed(data.get("error_page", "ERROR"), str,
                          "error_page", "a page name string"),
        name=_typed(data.get("name", "web-service"), str, "name",
                    "a service name string"),
    )


def save_service(service: WebService, path: str | Path) -> None:
    """Write a service specification to a JSON file."""
    Path(path).write_text(
        json.dumps(service_to_dict(service), indent=2, ensure_ascii=False)
    )


def loads_service(text: str, *, strict: bool = False) -> WebService:
    """Parse a service specification from a JSON string.

    Truncated or otherwise invalid JSON raises :class:`SpecFormatError`
    (code ``bad-json``) instead of ``json.JSONDecodeError``.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecFormatError(
            f"payload is not valid JSON: {exc}", code="bad-json",
        ) from exc
    return service_from_dict(data, strict=strict)


def load_service(path: str | Path, *, strict: bool = False) -> WebService:
    """Read a service specification from a JSON file."""
    return loads_service(Path(path).read_text(), strict=strict)


def database_to_dict(database: Database) -> dict:
    """Serialize a database (facts, constants, domain)."""
    return {
        "format": "repro.database/1",
        "facts": {
            sym.name: [list(t) for t in sorted(rel, key=repr)]
            for sym, rel in database.instance
        },
        "constants": dict(database.constants),
        "domain": sorted(database.domain, key=repr),
    }


_DATABASE_KEYS = frozenset({"format", "facts", "constants", "domain"})


def database_from_dict(
    data: dict, schema: RelationalSchema, *, strict: bool = False
) -> Database:
    """Rebuild a database against a given database schema.

    Malformed payloads raise :class:`SpecFormatError` (see
    :func:`service_from_dict`); facts/constants that do not fit
    ``schema`` surface as code ``bad-database`` with the offending
    relation's path.
    """
    _object(data, "")
    if data.get("format") != "repro.database/1":
        raise SpecFormatError(
            f"unsupported or missing format tag: {data.get('format')!r} "
            "(expected 'repro.database/1')",
            code="bad-format-tag", path="format",
        )
    if strict:
        _reject_unknown(data, _DATABASE_KEYS, "")
    facts = {}
    facts_data = _object(data.get("facts", {}), "facts")
    for name, rows in facts_data.items():
        row_path = _join("facts", name)
        _typed(rows, list, row_path, "a list of tuples")
        facts[name] = [
            tuple(_typed(t, list, f"{row_path}[{i}]", "a fact tuple"))
            for i, t in enumerate(rows)
        ]
    constants = _object(data.get("constants", {}), "constants")
    domain = _typed(data.get("domain", []), list, "domain",
                    "a list of domain values")
    try:
        return Database(schema, facts, constants, extra_domain=domain)
    except (ValueError, KeyError) as exc:
        raise SpecFormatError(str(exc), code="bad-database") from exc


#: Checkpoint format tags this build reads.  ``/2`` adds the
#: retry/quarantine state (``extra["quarantined_units"]``) written by
#: the supervised engine; ``/1`` files from earlier builds carry the
#: same cursor/frontier fields and resume unchanged.
_CHECKPOINT_FORMATS = ("repro.checkpoint/1", "repro.checkpoint/2")


def atomic_write_text(path: str | Path, text: str, *, interrupt=None) -> None:
    """Write ``text`` to ``path`` so that a kill leaves no torn file.

    The classic temp-file + ``fsync`` + ``os.replace`` dance: the data
    is durably on disk *before* the atomic rename, so at every instant
    ``path`` holds either the complete previous content or the complete
    new content — never a truncated mix.  The temp file lives in the
    destination directory (``os.replace`` must not cross filesystems).

    ``interrupt`` is the fault-injection seam: called between the
    synced temp write and the rename — the worst possible moment for a
    kill — it may raise, leaving the temp file behind exactly as a
    SIGKILL would.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    if interrupt is not None:
        interrupt()
    os.replace(tmp, path)


def checkpoint_to_dict(checkpoint) -> dict:
    """Serialize a :class:`~repro.verifier.budget.Checkpoint`.

    The cursor is only valid for the same (service, property,
    enumeration parameters); ``procedure`` and ``property_name`` are
    stored so a resuming caller can sanity-check the pairing.
    """
    return {"format": "repro.checkpoint/2", **checkpoint.to_dict()}


def checkpoint_from_dict(data: dict):
    """Rebuild a checkpoint from :func:`checkpoint_to_dict` output.

    Accepts both the current ``repro.checkpoint/2`` format and ``/1``
    files written before the fault-tolerance layer.  Malformed input
    raises :class:`~repro.verifier.budget.CheckpointFormatError` naming
    the offending field.
    """
    from repro.verifier.budget import Checkpoint, CheckpointFormatError

    if not isinstance(data, dict):
        raise CheckpointFormatError(
            f"checkpoint must be a JSON object, got {type(data).__name__}",
            field="",
        )
    if data.get("format") not in _CHECKPOINT_FORMATS:
        raise CheckpointFormatError(
            f"unsupported or missing checkpoint format tag: "
            f"{data.get('format')!r} (expected one of "
            f"{', '.join(_CHECKPOINT_FORMATS)})",
            field="format",
        )
    return Checkpoint.from_dict(data)


def save_checkpoint(checkpoint, path: str | Path, *, interrupt=None) -> None:
    """Atomically write an interrupted run's checkpoint to a JSON file.

    A kill at any instant — including between the write and the rename —
    leaves the previous checkpoint intact, so a resume file can never be
    truncated by the very interruption it exists to survive.
    """
    atomic_write_text(
        path,
        json.dumps(checkpoint_to_dict(checkpoint), indent=2,
                   ensure_ascii=False),
        interrupt=interrupt,
    )


def load_checkpoint(path: str | Path):
    """Read a checkpoint written by :func:`save_checkpoint`.

    Unreadable JSON (a file truncated by pre-atomic writers, or a
    partial copy) raises
    :class:`~repro.verifier.budget.CheckpointFormatError` instead of
    ``JSONDecodeError``.
    """
    from repro.verifier.budget import CheckpointFormatError

    text = Path(path).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointFormatError(
            f"checkpoint file {path} is not valid JSON ({exc}); "
            "was the file truncated by an interrupted write?",
            field="",
        ) from None
    return checkpoint_from_dict(data)
