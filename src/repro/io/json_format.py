"""JSON serialization of services and databases.

Formulas are stored as text in the :mod:`repro.fol.parser` syntax; the
printers in :mod:`repro.fol.formulas` emit exactly that syntax, so
``parse(str(formula)) == formula`` and serialization round-trips (the
property tests check this).  Domain values must be JSON-representable
(strings/numbers) — the whole library uses strings in practice.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from repro.fol.parser import parse_formula
from repro.schema.database import Database
from repro.schema.schema import RelationalSchema, ServiceSchema
from repro.schema.symbols import RelationKind, RelationSymbol
from repro.service.page import WebPageSchema
from repro.service.rules import ActionRule, InputRule, StateRule, TargetRule
from repro.service.webservice import WebService

_KINDS = {
    "database": RelationKind.DATABASE,
    "state": RelationKind.STATE,
    "input": RelationKind.INPUT,
    "action": RelationKind.ACTION,
}


def _schema_to_dict(schema: RelationalSchema) -> dict:
    return {
        "relations": [[r.name, r.arity] for r in sorted(schema.relations)],
        "constants": sorted(schema.constants),
    }


def _schema_from_dict(data: dict, kind: RelationKind) -> RelationalSchema:
    relations = [
        RelationSymbol(name, arity, kind) for name, arity in data.get("relations", [])
    ]
    return RelationalSchema(relations, data.get("constants", []))


def service_to_dict(service: WebService) -> dict:
    """Serialize a Web service to a JSON-ready dict."""
    schema = service.schema
    return {
        "format": "repro.webservice/1",
        "name": service.name,
        "home": service.home,
        "error_page": service.error_page,
        "schema": {
            "database": _schema_to_dict(schema.database),
            "state": _schema_to_dict(schema.state),
            "input": _schema_to_dict(schema.input),
            "action": _schema_to_dict(schema.action),
        },
        "pages": [_page_to_dict(page) for page in service.pages.values()],
    }


def _page_to_dict(page: WebPageSchema) -> dict:
    return {
        "name": page.name,
        "inputs": list(page.inputs),
        "input_constants": list(page.input_constants),
        "actions": list(page.actions),
        "targets": list(page.targets),
        "input_rules": [
            {"input": r.input, "variables": list(r.variables),
             "formula": str(r.formula)}
            for r in page.input_rules
        ],
        "state_rules": [
            {"state": r.state, "insert": r.insert,
             "variables": list(r.variables), "formula": str(r.formula)}
            for r in page.state_rules
        ],
        "action_rules": [
            {"action": r.action, "variables": list(r.variables),
             "formula": str(r.formula)}
            for r in page.action_rules
        ],
        "target_rules": [
            {"target": r.target, "formula": str(r.formula)}
            for r in page.target_rules
        ],
    }


def service_from_dict(data: dict) -> WebService:
    """Rebuild a Web service from :func:`service_to_dict` output."""
    if data.get("format") != "repro.webservice/1":
        raise ValueError(
            f"unsupported or missing format tag: {data.get('format')!r}"
        )
    schema = ServiceSchema(
        database=_schema_from_dict(data["schema"]["database"], RelationKind.DATABASE),
        state=_schema_from_dict(data["schema"]["state"], RelationKind.STATE),
        input=_schema_from_dict(data["schema"]["input"], RelationKind.INPUT),
        action=_schema_from_dict(data["schema"]["action"], RelationKind.ACTION),
    )

    def parse(text: str):
        # @/# sigils in the serialized text disambiguate constants, so
        # no constant sets need to be passed.
        return parse_formula(text)

    pages = []
    for pd in data["pages"]:
        pages.append(
            WebPageSchema(
                name=pd["name"],
                inputs=pd.get("inputs", ()),
                input_constants=pd.get("input_constants", ()),
                actions=pd.get("actions", ()),
                targets=pd.get("targets", ()),
                input_rules=[
                    InputRule(r["input"], tuple(r["variables"]), parse(r["formula"]))
                    for r in pd.get("input_rules", [])
                ],
                state_rules=[
                    StateRule(
                        r["state"], tuple(r["variables"]), parse(r["formula"]),
                        insert=r.get("insert", True),
                    )
                    for r in pd.get("state_rules", [])
                ],
                action_rules=[
                    ActionRule(r["action"], tuple(r["variables"]), parse(r["formula"]))
                    for r in pd.get("action_rules", [])
                ],
                target_rules=[
                    TargetRule(r["target"], parse(r["formula"]))
                    for r in pd.get("target_rules", [])
                ],
            )
        )
    return WebService(
        schema,
        pages,
        home=data["home"],
        error_page=data.get("error_page", "ERROR"),
        name=data.get("name", "web-service"),
    )


def save_service(service: WebService, path: str | Path) -> None:
    """Write a service specification to a JSON file."""
    Path(path).write_text(
        json.dumps(service_to_dict(service), indent=2, ensure_ascii=False)
    )


def load_service(path: str | Path) -> WebService:
    """Read a service specification from a JSON file."""
    return service_from_dict(json.loads(Path(path).read_text()))


def database_to_dict(database: Database) -> dict:
    """Serialize a database (facts, constants, domain)."""
    return {
        "format": "repro.database/1",
        "facts": {
            sym.name: [list(t) for t in sorted(rel, key=repr)]
            for sym, rel in database.instance
        },
        "constants": dict(database.constants),
        "domain": sorted(database.domain, key=repr),
    }


def database_from_dict(data: dict, schema: RelationalSchema) -> Database:
    """Rebuild a database against a given database schema."""
    if data.get("format") != "repro.database/1":
        raise ValueError(
            f"unsupported or missing format tag: {data.get('format')!r}"
        )
    facts = {
        name: [tuple(t) for t in rows] for name, rows in data.get("facts", {}).items()
    }
    return Database(
        schema,
        facts,
        data.get("constants", {}),
        extra_domain=data.get("domain", ()),
    )


#: Checkpoint format tags this build reads.  ``/2`` adds the
#: retry/quarantine state (``extra["quarantined_units"]``) written by
#: the supervised engine; ``/1`` files from earlier builds carry the
#: same cursor/frontier fields and resume unchanged.
_CHECKPOINT_FORMATS = ("repro.checkpoint/1", "repro.checkpoint/2")


def atomic_write_text(path: str | Path, text: str, *, interrupt=None) -> None:
    """Write ``text`` to ``path`` so that a kill leaves no torn file.

    The classic temp-file + ``fsync`` + ``os.replace`` dance: the data
    is durably on disk *before* the atomic rename, so at every instant
    ``path`` holds either the complete previous content or the complete
    new content — never a truncated mix.  The temp file lives in the
    destination directory (``os.replace`` must not cross filesystems).

    ``interrupt`` is the fault-injection seam: called between the
    synced temp write and the rename — the worst possible moment for a
    kill — it may raise, leaving the temp file behind exactly as a
    SIGKILL would.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    if interrupt is not None:
        interrupt()
    os.replace(tmp, path)


def checkpoint_to_dict(checkpoint) -> dict:
    """Serialize a :class:`~repro.verifier.budget.Checkpoint`.

    The cursor is only valid for the same (service, property,
    enumeration parameters); ``procedure`` and ``property_name`` are
    stored so a resuming caller can sanity-check the pairing.
    """
    return {"format": "repro.checkpoint/2", **checkpoint.to_dict()}


def checkpoint_from_dict(data: dict):
    """Rebuild a checkpoint from :func:`checkpoint_to_dict` output.

    Accepts both the current ``repro.checkpoint/2`` format and ``/1``
    files written before the fault-tolerance layer.  Malformed input
    raises :class:`~repro.verifier.budget.CheckpointFormatError` naming
    the offending field.
    """
    from repro.verifier.budget import Checkpoint, CheckpointFormatError

    if not isinstance(data, dict):
        raise CheckpointFormatError(
            f"checkpoint must be a JSON object, got {type(data).__name__}",
            field="",
        )
    if data.get("format") not in _CHECKPOINT_FORMATS:
        raise CheckpointFormatError(
            f"unsupported or missing checkpoint format tag: "
            f"{data.get('format')!r} (expected one of "
            f"{', '.join(_CHECKPOINT_FORMATS)})",
            field="format",
        )
    return Checkpoint.from_dict(data)


def save_checkpoint(checkpoint, path: str | Path, *, interrupt=None) -> None:
    """Atomically write an interrupted run's checkpoint to a JSON file.

    A kill at any instant — including between the write and the rename —
    leaves the previous checkpoint intact, so a resume file can never be
    truncated by the very interruption it exists to survive.
    """
    atomic_write_text(
        path,
        json.dumps(checkpoint_to_dict(checkpoint), indent=2,
                   ensure_ascii=False),
        interrupt=interrupt,
    )


def load_checkpoint(path: str | Path):
    """Read a checkpoint written by :func:`save_checkpoint`.

    Unreadable JSON (a file truncated by pre-atomic writers, or a
    partial copy) raises
    :class:`~repro.verifier.budget.CheckpointFormatError` instead of
    ``JSONDecodeError``.
    """
    from repro.verifier.budget import CheckpointFormatError

    text = Path(path).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointFormatError(
            f"checkpoint file {path} is not valid JSON ({exc}); "
            "was the file truncated by an interrupted write?",
            field="",
        ) from None
    return checkpoint_from_dict(data)
