"""Interchange: JSON (de)serialization and pretty printing.

Services, databases, LTL-FO properties and verification checkpoints
round-trip through a plain JSON structure (formulas as text in the
:mod:`repro.fol.parser` syntax), and specifications render in the
paper's "Page HP / Inputs / Rules / End Page" layout for review.
"""

from repro.io.json_format import (
    SpecFormatError,
    atomic_write_text,
    service_to_dict,
    service_from_dict,
    save_service,
    load_service,
    loads_service,
    database_to_dict,
    database_from_dict,
    checkpoint_to_dict,
    checkpoint_from_dict,
    save_checkpoint,
    load_checkpoint,
)
from repro.io.pretty import service_to_text, page_to_text

__all__ = [
    "SpecFormatError",
    "atomic_write_text",
    "loads_service",
    "service_to_dict",
    "service_from_dict",
    "save_service",
    "load_service",
    "database_to_dict",
    "database_from_dict",
    "checkpoint_to_dict",
    "checkpoint_from_dict",
    "save_checkpoint",
    "load_checkpoint",
    "service_to_text",
    "page_to_text",
]
