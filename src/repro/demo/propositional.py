"""The propositional abstraction of the demo store (Example 4.3).

§4's recipe: "abstract their predicates to propositional symbols, thus
concentrating only on reachability properties".  Pages and buttons stay;
the database lookup of the login check is abstracted into a free
propositional input ``login_ok`` (the environment decides whether the
credentials check out), and per-item state collapses to the
propositions ``logged_in``, ``has_cart``, ``has_order``.

The result is *fully propositional* (Theorem 4.6) and carries the
Example 4.3 properties: ``AG EF HP`` and
``AG((HP ∧ button_login) → EF button_authorize)``.
"""

from __future__ import annotations

from repro.service.builder import ServiceBuilder
from repro.service.webservice import WebService


def propositional_service() -> WebService:
    """Build the propositional navigation skeleton of the store."""
    b = ServiceBuilder("ecommerce-propositional")

    buttons = [
        "btn_login", "btn_register", "btn_clear",
        "btn_search", "btn_view_cart", "btn_logout",
        "btn_add_to_cart", "btn_buy", "btn_authorize", "btn_back",
        "btn_continue",
    ]
    for name in buttons:
        b.input(name)
    b.input("login_ok")  # abstraction of user(name, password)

    b.state("logged_in")
    b.state("has_cart")
    b.state("has_order")

    hp = b.page("HP", home=True)
    hp.toggle("btn_login", "btn_register", "btn_clear", "login_ok")
    hp.insert("logged_in", "btn_login & login_ok")
    hp.target("HP", "btn_clear & !btn_login & !btn_register")
    hp.target("RP", "btn_register & !btn_login & !btn_clear")
    hp.target("CP", "btn_login & login_ok & !btn_register & !btn_clear")
    hp.target("MP", "btn_login & !login_ok & !btn_register & !btn_clear")

    rp = b.page("RP")
    rp.toggle("btn_continue", "btn_back")
    rp.insert("logged_in", "btn_continue")
    rp.target("CP", "btn_continue & !btn_back")
    rp.target("HP", "btn_back & !btn_continue")

    mp = b.page("MP")
    mp.toggle("btn_back")
    mp.target("HP", "btn_back")

    cp = b.page("CP")
    cp.toggle("btn_search", "btn_view_cart", "btn_logout")
    cp.delete("logged_in", "btn_logout")
    cp.target("LSP", "btn_search & !btn_view_cart & !btn_logout")
    cp.target("CC", "btn_view_cart & !btn_search & !btn_logout")
    cp.target("HP", "btn_logout & !btn_search & !btn_view_cart")

    lsp = b.page("LSP")
    lsp.toggle("btn_search", "btn_back", "btn_logout")
    lsp.delete("logged_in", "btn_logout")
    lsp.target("PIP", "btn_search & !btn_back & !btn_logout")
    lsp.target("CP", "btn_back & !btn_search & !btn_logout")
    lsp.target("HP", "btn_logout & !btn_search & !btn_back")

    pip = b.page("PIP")
    pip.toggle("btn_add_to_cart", "btn_back", "btn_logout")
    pip.insert("has_cart", "btn_add_to_cart")
    pip.delete("logged_in", "btn_logout")
    pip.target("CC", "btn_add_to_cart & !btn_back & !btn_logout")
    pip.target("LSP", "btn_back & !btn_add_to_cart & !btn_logout")
    pip.target("HP", "btn_logout & !btn_add_to_cart & !btn_back")

    cc = b.page("CC")
    cc.toggle("btn_buy", "btn_continue", "btn_logout")
    cc.delete("logged_in", "btn_logout")
    cc.target("UPP", "has_cart & btn_buy & !btn_continue & !btn_logout")
    cc.target("CP", "btn_continue & !btn_buy & !btn_logout")
    cc.target("HP", "btn_logout & !btn_buy & !btn_continue")

    upp = b.page("UPP")
    upp.toggle("btn_authorize", "btn_back")
    upp.insert("has_order", "btn_authorize")
    upp.delete("has_cart", "btn_authorize")
    upp.target("COP", "btn_authorize & !btn_back")
    upp.target("CC", "btn_back & !btn_authorize")

    cop = b.page("COP")
    cop.toggle("btn_continue", "btn_logout")
    cop.delete("logged_in", "btn_logout")
    cop.target("CP", "btn_continue & !btn_logout")
    cop.target("HP", "btn_logout & !btn_continue")

    return b.build()
