"""Figure 1 / Example 4.8: the input-driven-search computer store.

A Web service with input-driven search (Definition 4.7): the single
unary input ``I`` starts at the database constant ``i0`` (the root
``products`` category) and thereafter follows edges of the binary search
relation ``R_I``, filtered by the quantifier-free condition ``avail(y)``
(the category or product is currently in stock).  The propositional
state ``new`` is set while browsing the *new* branch, mirroring the
example's reuse of page schemas for new and used computers.

:func:`figure1_database` is the exact hierarchy of Figure 1;
:func:`scaled_hierarchy_database` generates deeper/wider versions for
the Theorem 4.9 scaling benchmark (E6).
"""

from __future__ import annotations

from repro.schema.database import Database
from repro.service.builder import ServiceBuilder
from repro.service.webservice import WebService

ROOT = "products"


def search_service() -> WebService:
    """Build the Definition 4.7 service for the category search."""
    b = ServiceBuilder("figure1-search")
    b.database("R_I", 2)
    b.database("avail", 1)
    b.db_constant("i0")
    b.input("I", 1)
    b.state("not_start")
    b.state("new")

    page = b.page("SEARCH", home=True)
    page.options(
        "I",
        '(!not_start & y = #i0)'
        ' | (not_start & (exists x . prev_I(x) & R_I(x, y)) & avail(y))',
        ("y",),
    )
    page.insert("not_start", "!not_start")
    page.insert("new", 'I("new")')
    page.delete("new", 'I("used")')
    return b.build()


def figure1_database(service: WebService | None = None) -> Database:
    """The Figure 1 hierarchy, with a small in-stock product set."""
    service = service or search_service()
    edges = [
        (ROOT, "new"), (ROOT, "used"),
        ("new", "new desktops"), ("new", "new laptops"),
        ("used", "used desktops"), ("used", "used laptops"),
        ("new desktops", "nd1"), ("new laptops", "nl1"),
        ("used desktops", "ud1"), ("used laptops", "ul1"),
        ("used laptops", "ul2"),
    ]
    in_stock = [
        ROOT, "new", "used",
        "new desktops", "new laptops", "used desktops", "used laptops",
        "nd1", "nl1", "ul1",  # ul2 and ud1 are out of stock
    ]
    return Database(
        service.schema.database,
        {"R_I": edges, "avail": [(v,) for v in in_stock]},
        {"i0": ROOT},
    )


def scaled_hierarchy_database(
    depth: int,
    branching: int = 2,
    service: WebService | None = None,
    stock_ratio: float = 1.0,
) -> Database:
    """A complete ``branching``-ary category tree of the given depth.

    Node ``n_<path>`` children are ``n_<path><i>``; every node is in
    stock except a deterministic ``1 - stock_ratio`` fraction of leaves
    (so benchmarks vary both size and filtering).
    """
    service = service or search_service()
    edges: list[tuple[str, str]] = []
    in_stock: list[str] = [ROOT]
    frontier = [ROOT]
    names = {ROOT: "n"}
    for _level in range(depth):
        nxt: list[str] = []
        for node in frontier:
            for i in range(branching):
                child = f"{names[node]}{i}"
                names[child] = child
                edges.append((node, child))
                nxt.append(child)
        frontier = nxt
        for j, node in enumerate(frontier):
            is_leaf = _level == depth - 1
            if not is_leaf or (j * stock_ratio) % 1.0 < stock_ratio:
                in_stock.append(node)
    return Database(
        service.schema.database,
        {"R_I": edges, "avail": [(v,) for v in in_stock]},
        {"i0": ROOT},
    )
