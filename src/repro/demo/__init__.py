"""The paper's running examples as executable specifications.

- :mod:`repro.demo.ecommerce` — the full Figure 2 demo site (19 pages,
  the computer-selling service of Example 2.2) plus sample databases;
- :mod:`repro.demo.core` — the input-bounded core of the same service
  (HP → CP → LSP → PIP → UPP → COP slice), which lies in the Theorem 3.5
  decidable class and carries the paper's properties (1)-(4);
- :mod:`repro.demo.propositional` — the propositional abstraction of
  Example 4.3, in the Theorem 4.4 class;
- :mod:`repro.demo.search_site` — the Figure 1 / Example 4.8
  input-driven-search store (Theorem 4.9 class);
- :mod:`repro.demo.dataflow_demo` — a service whose defects are only
  visible to the whole-service dataflow analysis (the ``D5xx`` lint
  family and the pruning benchmark exercise it);
- :mod:`repro.demo.properties` — the paper's temporal properties,
  numbered as in the text.
"""

from repro.demo.ecommerce import ecommerce_service, ecommerce_database
from repro.demo.core import core_service, core_database
from repro.demo.propositional import propositional_service
from repro.demo.search_site import (
    search_service,
    figure1_database,
    scaled_hierarchy_database,
)
from repro.demo.dataflow_demo import dataflow_demo_service
from repro.demo.properties import (
    property_1_navigation,
    property_4_paid_before_ship,
    example_41_cancel_until_ship,
    example_43_home_reachable,
    example_43_login_to_payment,
)

__all__ = [
    "ecommerce_service",
    "ecommerce_database",
    "core_service",
    "core_database",
    "propositional_service",
    "search_service",
    "figure1_database",
    "scaled_hierarchy_database",
    "dataflow_demo_service",
    "property_1_navigation",
    "property_4_paid_before_ship",
    "example_41_cancel_until_ship",
    "example_43_home_reachable",
    "example_43_login_to_payment",
]
