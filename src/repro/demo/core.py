"""The input-bounded core of the demo store (Theorem 3.5 territory).

A trimmed slice of the Figure 2 site — HP → CP → LSP → PIP → UPP → COP,
with MP as the terminal "goodbye/failed login" page — engineered to lie
*inside* the decidable class of §3:

- every state/action/target rule is input-bounded, every input rule is
  ∃* with ground (here: no) state atoms;
- information flows between pages through ``prev`` inputs, not through
  set-valued state lookups (which would need non-ground state atoms);
- the ``name``/``password`` constants are requested exactly once (HP is
  never revisited), and every constant-requesting page leaves in one
  step, so the service is error-free;
- the ``conf``/``ship`` actions of the paper's property (2)/(4) fire on
  the confirmation page and the payment bookkeeping is cleared on exit,
  so the *paid-before-ship* property genuinely holds.

:func:`core_service_broken` is the same service with the payment check
removed — the verifier produces a concrete ship-without-payment lasso
for it, which the tests and the E3 benchmark rely on.
"""

from __future__ import annotations

from repro.schema.database import Database
from repro.service.builder import ServiceBuilder
from repro.service.webservice import WebService


def core_service(broken: bool = False) -> WebService:
    """The input-bounded purchasing slice of the demo store.

    With ``broken=True`` the payment page authorises shipment without
    checking that an amount was paid (the bug the paper's motivating
    property is designed to catch).
    """
    b = ServiceBuilder("ecommerce-core" + ("-broken" if broken else ""))

    b.database("user", 2)
    b.database("prod_prices", 2)
    b.database("criteria", 3)
    b.database("laptop_spec", 4)

    b.input_constant("name", "password")
    b.input("button", 1)
    b.input("laptopsearch", 3)
    b.input("select", 2)
    b.input("pay", 1)

    b.state("error", 1)
    b.state("logged", 1)
    b.state("pick", 2)
    b.state("paid", 1)
    b.state("ordered", 1)

    b.action("conf", 2)
    b.action("ship", 2)

    login_ok = 'user(name, password) & button("login")'

    hp = b.page("HP", home=True)
    hp.request("name", "password")
    hp.options("button", 'x = "login"', ("x",))
    hp.insert("error", f'm = "failed login" & !({login_ok})', ("m",))
    hp.insert("logged", f'u = name & {login_ok}', ("u",))
    hp.target("CP", login_ok)
    hp.target("MP", f'!({login_ok})')

    mp = b.page("MP")  # terminal: failed login / goodbye

    cp = b.page("CP")
    cp.options("button", 'x = "laptop" | x = "logout"', ("x",))
    cp.target("LSP", 'button("laptop")')
    cp.target("MP", 'button("logout")')

    lsp = b.page("LSP")
    lsp.options("button", 'x = "search" | x = "logout"', ("x",))
    lsp.options(
        "laptopsearch",
        'criteria("laptop", "ram", r) & criteria("laptop", "hdd", h) '
        '& criteria("laptop", "display", d)',
        ("r", "h", "d"),
    )
    lsp.target(
        "PIP", '(exists r, h, d . laptopsearch(r, h, d)) & button("search")'
    )
    lsp.target("MP", 'button("logout")')

    pip = b.page("PIP")
    pip.options(
        "select",
        'exists r, h, d . prev_laptopsearch(r, h, d) '
        '& laptop_spec(pid, r, h, d) & prod_prices(pid, price)',
        ("pid", "price"),
    )
    pip.options("button", 'x = "buy" | x = "back" | x = "logout"', ("x",))
    pip.insert("pick", 'select(pid, price) & button("buy")', ("pid", "price"))
    pip.target(
        "UPP", '(exists pid, price . select(pid, price)) & button("buy")'
    )
    pip.target("LSP", 'button("back")')
    pip.target("MP", 'button("logout")')

    upp = b.page("UPP")
    if broken:
        # BUG (the paper's motivating one): the payment box accepts *any*
        # catalog price, so the user can pay 999 for the 1299 laptop —
        # shipment then pairs with payment of the wrong amount.
        upp.options("pay", 'exists p . prod_prices(p, amount)', ("amount",))
        upp.insert(
            "ordered",
            '(exists amount . pay(amount)) '
            '& (exists amount . prev_select(pid, amount)) '
            '& button("authorize payment")',
            ("pid",),
        )
    else:
        upp.options("pay", 'exists pid . prev_select(pid, amount)', ("amount",))
        upp.insert(
            "ordered",
            '(exists amount . pay(amount) & prev_select(pid, amount)) '
            '& button("authorize payment")',
            ("pid",),
        )
    upp.options("button", 'x = "authorize payment" | x = "back"', ("x",))
    upp.insert("paid", 'pay(amount) & button("authorize payment")', ("amount",))
    upp.target(
        "COP",
        '(exists amount . pay(amount)) & button("authorize payment")',
    )
    upp.target("PIP", 'button("back")')

    cop = b.page("COP")
    cop.act("conf", 'u = name & paid(price)', ("u", "price"))
    cop.act("ship", 'u = name & ordered(pid)', ("u", "pid"))
    cop.options("button", 'x = "continue shopping" | x = "logout"', ("x",))
    # Clear the per-purchase bookkeeping so a later purchase cannot pair
    # an old price with a new product.
    cop.delete("paid", 'paid(price)', ("price",))
    cop.delete("ordered", 'ordered(pid)', ("pid",))
    cop.target("CP", 'button("continue shopping")')
    cop.target("MP", 'button("logout")')

    return b.build()


def core_service_broken() -> WebService:
    """The payment-bypass variant (ship without pay)."""
    return core_service(broken=True)


def core_database(service: WebService | None = None) -> Database:
    """A two-laptop catalog sized for exhaustive verification."""
    service = service or core_service()
    return Database(
        service.schema.database,
        {
            "user": [("alice", "pw1")],
            "prod_prices": [("l1", "999"), ("l2", "1299")],
            "criteria": [
                ("laptop", "ram", "8G"),
                ("laptop", "hdd", "512G"),
                ("laptop", "display", "14in"),
            ],
            "laptop_spec": [
                ("l1", "8G", "512G", "14in"),
                ("l2", "8G", "512G", "14in"),
            ],
        },
    )
