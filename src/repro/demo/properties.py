"""The paper's temporal properties, numbered as in the text.

- Property (1), Example 3.2 — navigation: whenever page P is reached,
  page Q is eventually reached: ``G(¬P) ∨ F(P ∧ F Q)``;
- Property (2)/(4), Examples 3.3-3.4 — no shipping before payment:
  ``∀pid ∀price  θ'(pid, price) B ¬(conf(name, price) ∧ ship(name, pid))``
  with θ' the input-bounded payment condition of (5);
- Example 4.1 — CTL*: a bought product eventually ships, and can be
  cancelled until it does;
- Example 4.3 — CTL navigation on the propositional abstraction:
  ``AG EF HP`` and ``AG((HP ∧ login) → EF authorize)``.
"""

from __future__ import annotations

from repro.ctl.syntax import (
    A,
    AG,
    CAtom,
    CImplies,
    E,
    EF,
    PF,
    PState,
    PU,
    StateFormula,
)
from repro.fol.formulas import And, Atom, Formula, Not
from repro.fol.parser import parse_formula
from repro.fol.terms import InputConst, Var
from repro.ltl.ltlfo import B, F, G, LTLFOSentence
from repro.ltl.syntax import LAnd, LNot, LOr, LTLAtom, LTLFormula


def property_1_navigation(page_p: str, page_q: str) -> LTLFOSentence:
    """Property (1): ``G(¬P) ∨ F(P ∧ F Q)`` for page propositions P, Q."""
    p = Atom(page_p, ())
    q = Atom(page_q, ())
    skeleton: LTLFormula = LOr(
        G(Not(p)),
        F(LAnd(LTLAtom(p), F(q))),
    )
    return LTLFOSentence((), skeleton, name=f"reach {page_q} after {page_p}")


def _theta_prime(payment_page: str = "UPP") -> Formula:
    """θ'(pid, price) of Example 3.4, formula (5): the input-bounded
    payment condition (with the catalog split into ``prod_prices``)."""
    return parse_formula(
        f'{payment_page} & pay(price) & button("authorize payment") '
        '& pick(pid, price) & prod_prices(pid, price)',
        input_constants=("name",),
    )


def property_4_paid_before_ship(payment_page: str = "UPP") -> LTLFOSentence:
    """Property (4): any shipped product was previously paid for.

    ``∀pid ∀price  θ' B ¬(conf(name, price) ∧ ship(name, pid))``.
    """
    theta = _theta_prime(payment_page)
    conf = Atom("conf", (InputConst("name"), Var("price")))
    ship = Atom("ship", (InputConst("name"), Var("pid")))
    skeleton = B(theta, Not(And(conf, ship)))
    return LTLFOSentence(("pid", "price"), skeleton, name="paid before ship")


def example_41_cancel_until_ship() -> LTLFOSentence:
    """A linear-time reading of Example 4.1's guarantee: once θ' holds,
    the product eventually ships.

    (The full Example 4.1 sentence is CTL*-FO —
    ``AG(θ' → A((EF cancel) U ship))`` — and lies outside the decidable
    classes by Theorem 4.2; this LTL-FO weakening is the part the
    Theorem 3.5 verifier can decide.)
    """
    theta = _theta_prime()
    ship = Atom("ship", (InputConst("name"), Var("pid")))
    skeleton = G(LOr(LNot(LTLAtom(theta)), F(ship)))
    return LTLFOSentence(("pid", "price"), skeleton, name="bought implies ships")


def example_43_home_reachable(home: str = "HP") -> StateFormula:
    """Example 4.3: from any page one can navigate back home —
    ``AG EF HP``."""
    return AG(EF(CAtom(home)))


def example_43_login_to_payment(
    home: str = "HP",
    login_prop: object = "btn_login",
    authorize_prop: object = "btn_authorize",
) -> StateFormula:
    """Example 4.3: after login, the user can reach a page where payment
    can be authorised —
    ``AG((HP ∧ login) → EF authorize)``."""
    return AG(
        CImplies(
            CAtom(home) & CAtom(login_prop),
            EF(CAtom(authorize_prop)),
        )
    )


def ctl_star_eventual_purchase(
    buy_prop: object = "btn_buy", cop: str = "COP"
) -> StateFormula:
    """A CTL* property (not expressible in CTL): on every path, either
    the user never buys, or the purchase page is eventually reached —
    ``A(G ¬buy ∨ F COP)`` with the temporal operators mixed under one
    path quantifier."""
    from repro.ctl.syntax import PNot, POr

    never_buy = PNot(PF(CAtom(buy_prop)))
    reaches_cop = PF(CAtom(cop))
    return A(POr(never_buy, reaches_cop))
