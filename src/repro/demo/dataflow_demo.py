"""A small service whose bugs only whole-service dataflow can see.

Every page of this spec is *syntactically* fine — the navigation graph
reaches everything, every written relation has a reader, every rule
condition is satisfiable in isolation — so the per-rule lint passes stay
quiet.  The bugs live in the interaction of pages along executable
paths, which is exactly what :mod:`repro.analysis.dataflow` computes:

- ``MID`` re-requests the ``token`` constant that ``HOME`` already
  provided, so every step from it fires error condition (ii) of
  Definition 2.3 (its rules are dead, ``D502``) — and ``DEEP``, only
  reachable through ``MID``, can never be entered (``D501``);
- ``ghost`` has no insertion rule anywhere, so it is empty in every
  reachable snapshot: the ``STAGE`` action guarded by it can never fire
  (``D502``) and the ``STAGE → GHOSTLAND`` target conditioned on it is
  always false (``D504``), stranding ``GHOSTLAND`` (``D501``);
- ``audit`` is written on ``STAGE`` but its only reader sits on the
  dead page ``DEEP``, so the write never influences a run (``D503``);
- ``VIEW`` logs the ``key`` constant, but the only page that requests
  ``key`` is the unreachable ``GHOSTLAND`` — the read fires error
  condition (i) on every executable path (``D505``).

Used by the lint tests and as the checked-in ``dataflow_demo.json``
example spec; the statically-dead rules also make it the workload of
the pruning benchmark (E15).
"""

from __future__ import annotations

from repro.service.builder import ServiceBuilder
from repro.service.webservice import WebService


def dataflow_demo_service() -> WebService:
    """Build the demo service described in the module docstring."""
    b = ServiceBuilder("dataflow-demo")

    b.input_constant("token", "key")
    b.input("pick", 1)

    b.state("audit", 1)
    b.state("ghost", 1)

    b.action("log", 1)
    b.action("flush", 1)

    home = b.page("HOME", home=True)
    home.request("token")
    home.options("pick", 'x = "mid" | x = "stage"', ("x",))
    home.target("MID", 'pick("mid")')
    home.target("STAGE", 'pick("stage")')

    # BUG: token was provided on HOME; requesting it again makes every
    # step from MID an error-condition-(ii) step, so none of these
    # rules can ever fire and DEEP is unreachable despite its edge.
    mid = b.page("MID")
    mid.request("token")
    mid.options("pick", 'x = "deep"', ("x",))
    mid.target("DEEP", 'pick("deep")')

    deep = b.page("DEEP")
    deep.options("pick", 'x = "back"', ("x",))
    deep.target("VIEW", "exists x . audit(x)")  # only reader of audit

    stage = b.page("STAGE")
    stage.options("pick", 'x = "view" | x = "ghosts"', ("x",))
    stage.insert("audit", "x = token", ("x",))  # write never read live
    stage.act("flush", "ghost(x)", ("x",))     # ghost is always empty
    stage.target("GHOSTLAND", "exists x . ghost(x)")
    stage.target("VIEW", 'pick("view")')

    ghostland = b.page("GHOSTLAND")
    ghostland.request("key")  # the only requester of key
    ghostland.options("pick", 'x = "go"', ("x",))
    ghostland.target("VIEW", 'pick("go")')

    view = b.page("VIEW")
    view.options("pick", 'x = "home"', ("x",))
    view.act("log", "x = key", ("x",))  # key is never provided here

    return b.build()
