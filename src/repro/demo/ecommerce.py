"""The full Figure 2 demo: an online computer store in 19 pages.

This is the paper's running example (Example 2.2 and Figure 2),
reconstructed as an executable specification: registration, login (with
the special ``Admin`` user routed to the administration pages), desktop
and laptop search driven by the ``criteria`` database relation, a
product index fed by the previous search input, product details, a
shopping cart, payment with ``conf``/``ship`` actions, order viewing and
cancellation, and the admin's pending-order/shipping workflow.

Faithfulness note: like the paper's own demo, the *full* site is not
input-bounded everywhere (e.g. the cart page lists a set-valued state
relation in its options — a non-ground state atom), and pages such as
``MP → back → HP`` re-request the ``name``/``password`` constants, which
Definition 2.3's condition (ii) flags as an error.  Both facts are part
of the story: :func:`repro.service.classify.classify` pinpoints the
rules outside the decidable classes, and the error-freeness checker
finds the constant-protocol flaw.  The trimmed, fully input-bounded
slice lives in :mod:`repro.demo.core`.
"""

from __future__ import annotations

from repro.schema.database import Database
from repro.service.builder import ServiceBuilder
from repro.service.webservice import WebService


def ecommerce_service() -> WebService:
    """Build the 19-page Figure 2 Web service."""
    b = ServiceBuilder("ecommerce-demo")

    # ---- database schema -------------------------------------------------
    b.database("user", 2)                 # user(name, password)
    b.database("prod_prices", 2)          # prod_prices(pid, price)
    b.database("prod_names", 2)           # prod_names(pid, pname)
    b.database("prod_category", 2)        # prod_category(pid, cat)
    b.database("criteria", 3)             # criteria(cat, attr, value)
    b.database("laptop_spec", 4)          # laptop_spec(pid, ram, hdd, display)
    b.database("desktop_spec", 3)         # desktop_spec(pid, ram, hdd)

    # ---- input schema -------------------------------------------------------
    b.input_constant("name", "password", "repassword", "ccno")
    b.input("button", 1)
    b.input("laptopsearch", 3)
    b.input("desktopsearch", 2)
    b.input("select", 2)                  # select(pid, price) on PIP
    b.input("cartitem", 1)                # cart row picks on CC
    b.input("pay", 1)                     # pay(amount) on UPP
    b.input("orderitem", 1)               # order row picks on VOP / POP

    # ---- state schema --------------------------------------------------------
    b.state("error", 1)
    b.state("logged", 1)
    b.state("newuser", 2)
    b.state("userchoice", 3)              # the LSP example's state
    b.state("pick", 2)                    # pick(pid, price), Example 3.3
    b.state("chosen", 1)
    b.state("cart", 1)
    b.state("paid", 1)
    b.state("ordered", 1)
    b.state("shipped", 1)
    b.state("cancelled", 1)

    # ---- action schema --------------------------------------------------------
    b.action("conf", 2)                   # conf(user, price)
    b.action("ship", 2)                   # ship(user, pid)

    login_ok = 'user(name, password) & button("login")'
    login_bad = '!user(name, password) & button("login")'

    # ---- HP: home page (Example 2.2, verbatim rules) -----------------------
    hp = b.page("HP", home=True)
    hp.request("name", "password")
    hp.options("button", 'x = "login" | x = "register" | x = "clear"', ("x",))
    hp.insert("error", f'm = "failed login" & {login_bad}', ("m",))
    hp.insert("logged", f'u = name & {login_ok}', ("u",))
    hp.target("HP", 'button("clear")')
    hp.target("NP", 'button("register")')
    hp.target("CP", f'{login_ok} & name != "Admin"')
    hp.target("AP", f'{login_ok} & name = "Admin"')
    hp.target("MP", login_bad)

    # ---- NP: new-user registration page ----------------------------------
    np = b.page("NP")
    np.request("repassword")
    np.options("button", 'x = "register" | x = "cancel"', ("x",))
    np.insert(
        "newuser",
        'u = name & p = password & password = repassword & button("register")',
        ("u", "p"),
    )
    np.insert("logged", 'u = name & password = repassword & button("register")', ("u",))
    np.target("RP", 'button("register") & password = repassword')
    np.target("MP", 'button("register") & password != repassword')
    np.target("HP", 'button("cancel")')

    # ---- RP: successful registration ---------------------------------------
    rp = b.page("RP")
    rp.options("button", 'x = "continue" | x = "logout"', ("x",))
    rp.target("CP", 'button("continue")')
    rp.target("HP", 'button("logout")')

    # ---- MP: error message page ------------------------------------------
    mp = b.page("MP")
    mp.options("button", 'x = "back"', ("x",))
    mp.target("HP", 'button("back")')

    # ---- CP: customer page -------------------------------------------------
    cp = b.page("CP")
    cp.options(
        "button",
        'x = "desktop" | x = "laptop" | x = "view cart" | x = "my order" '
        '| x = "logout"',
        ("x",),
    )
    cp.target("DSP", 'button("desktop")')
    cp.target("LSP", 'button("laptop")')
    cp.target("CC", 'button("view cart")')
    cp.target("VOP", 'button("my order")')
    cp.target("HP", 'button("logout")')

    # ---- AP: administrator page ---------------------------------------------
    ap = b.page("AP")
    ap.options(
        "button",
        'x = "pending orders" | x = "order status" | x = "logout"',
        ("x",),
    )
    ap.target("POP", 'button("pending orders")')
    ap.target("OSP", 'button("order status")')
    ap.target("HP", 'button("logout")')

    # ---- LSP: laptop search page (Example 2.2, verbatim) --------------------
    lsp = b.page("LSP")
    lsp.options(
        "button", 'x = "search" | x = "view cart" | x = "logout"', ("x",)
    )
    lsp.options(
        "laptopsearch",
        'criteria("laptop", "ram", r) & criteria("laptop", "hdd", h) '
        '& criteria("laptop", "display", d)',
        ("r", "h", "d"),
    )
    lsp.insert(
        "userchoice", 'laptopsearch(r, h, d) & button("search")', ("r", "h", "d")
    )
    lsp.target("HP", 'button("logout")')
    lsp.target(
        "PIP", '(exists r, h, d . laptopsearch(r, h, d)) & button("search")'
    )
    lsp.target("CC", 'button("view cart")')

    # ---- DSP: desktop search page ------------------------------------------
    dsp = b.page("DSP")
    dsp.options(
        "button", 'x = "search" | x = "view cart" | x = "logout"', ("x",)
    )
    dsp.options(
        "desktopsearch",
        'criteria("desktop", "ram", r) & criteria("desktop", "hdd", h)',
        ("r", "h"),
    )
    dsp.target("HP", 'button("logout")')
    dsp.target(
        "PIP", '(exists r, h . desktopsearch(r, h)) & button("search")'
    )
    dsp.target("CC", 'button("view cart")')

    # ---- PIP: product index page (search results) --------------------------
    pip = b.page("PIP")
    pip.options(
        "select",
        '(exists r, h, d . prev_laptopsearch(r, h, d) '
        '   & laptop_spec(pid, r, h, d)) & prod_prices(pid, price)'
        ' | (exists r, h . prev_desktopsearch(r, h) '
        '   & desktop_spec(pid, r, h)) & prod_prices(pid, price)',
        ("pid", "price"),
    )
    pip.options(
        "button",
        'x = "view" | x = "back" | x = "view cart" | x = "continue shopping" '
        '| x = "logout"',
        ("x",),
    )
    pip.insert("pick", 'select(pid, price) & button("view")', ("pid", "price"))
    pip.insert(
        "chosen", '(exists price . select(pid, price)) & button("view")', ("pid",)
    )
    pip.target("PP", '(exists pid, price . select(pid, price)) & button("view")')
    pip.target("CP", 'button("back") | button("continue shopping")')
    pip.target("CC", 'button("view cart")')
    pip.target("HP", 'button("logout")')

    # ---- PP: product detail page -----------------------------------------
    pp = b.page("PP")
    pp.options(
        "button",
        'x = "add to cart" | x = "back" | x = "view cart" '
        '| x = "continue shopping" | x = "logout"',
        ("x",),
    )
    pp.insert("cart", 'chosen(pid) & button("add to cart")', ("pid",))
    pp.target("CC", 'button("add to cart") | button("view cart")')
    pp.target("CP", 'button("back") | button("continue shopping")')
    pp.target("HP", 'button("logout")')

    # ---- CC: cart contents -------------------------------------------------
    cc = b.page("CC")
    cc.options("cartitem", 'cart(pid)', ("pid",))
    cc.options(
        "button",
        'x = "empty cart" | x = "buy" | x = "continue shopping" | x = "logout"',
        ("x",),
    )
    cc.delete("cart", 'cart(pid) & button("empty cart")', ("pid",))
    cc.target("UPP", 'button("buy")')
    cc.target("CP", 'button("continue shopping") | button("empty cart")')
    cc.target("HP", 'button("logout")')

    # ---- UPP: user payment page (Example 3.3's payment page) ---------------
    upp = b.page("UPP")
    upp.request("ccno")
    upp.options("pay", 'exists pid . pick(pid, amount)', ("amount",))
    upp.options(
        "button", 'x = "authorize payment" | x = "back"', ("x",)
    )
    upp.insert("paid", 'pay(amount) & button("authorize payment")', ("amount",))
    upp.insert(
        "ordered",
        'chosen(pid) & (exists amount . pay(amount)) '
        '& button("authorize payment")',
        ("pid",),
    )
    upp.target("COP", '(exists amount . pay(amount)) & button("authorize payment")')
    upp.target("CC", 'button("back")')

    # ---- COP: order confirmation page (actions conf and ship) ----------------
    cop = b.page("COP")
    cop.act("conf", 'u = name & paid(price)', ("u", "price"))
    cop.act("ship", 'u = name & ordered(pid)', ("u", "pid"))
    cop.options(
        "button",
        'x = "view cart" | x = "continue shopping" | x = "logout"',
        ("x",),
    )
    cop.target("CC", 'button("view cart")')
    cop.target("CP", 'button("continue shopping")')
    cop.target("HP", 'button("logout")')

    # ---- VOP: view order page ----------------------------------------------
    vop = b.page("VOP")
    vop.options("orderitem", 'ordered(pid) & !cancelled(pid)', ("pid",))
    vop.options(
        "button", 'x = "cancel" | x = "back" | x = "logout"', ("x",)
    )
    vop.insert("cancelled", 'orderitem(pid) & button("cancel")', ("pid",))
    vop.delete("ordered", 'orderitem(pid) & button("cancel")', ("pid",))
    vop.target("CCP", '(exists pid . orderitem(pid)) & button("cancel")')
    vop.target("CP", 'button("back")')
    vop.target("HP", 'button("logout")')

    # ---- POP: pending orders (admin) ---------------------------------------
    pop = b.page("POP")
    pop.options("orderitem", 'ordered(pid) & !shipped(pid)', ("pid",))
    pop.options(
        "button",
        'x = "ship" | x = "delete" | x = "back" | x = "logout"',
        ("x",),
    )
    pop.insert("shipped", 'orderitem(pid) & button("ship")', ("pid",))
    pop.delete("ordered", 'orderitem(pid) & button("delete")', ("pid",))
    pop.target("SCP", '(exists pid . orderitem(pid)) & button("ship")')
    pop.target("DCP", '(exists pid . orderitem(pid)) & button("delete")')
    pop.target("AP", 'button("back")')
    pop.target("HP", 'button("logout")')

    # ---- OSP: order status (admin) -----------------------------------------
    osp = b.page("OSP")
    osp.options("orderitem", 'shipped(pid) | ordered(pid)', ("pid",))
    osp.options("button", 'x = "back" | x = "logout"', ("x",))
    osp.target("AP", 'button("back")')
    osp.target("HP", 'button("logout")')

    # ---- SCP / DCP / CCP: confirmations -------------------------------------
    scp = b.page("SCP")
    scp.options("button", 'x = "continue control" | x = "logout"', ("x",))
    scp.target("POP", 'button("continue control")')
    scp.target("HP", 'button("logout")')

    dcp = b.page("DCP")
    dcp.options("button", 'x = "continue control" | x = "logout"', ("x",))
    dcp.target("POP", 'button("continue control")')
    dcp.target("HP", 'button("logout")')

    ccp = b.page("CCP")
    ccp.options("button", 'x = "continue shopping" | x = "logout"', ("x",))
    ccp.target("CP", 'button("continue shopping")')
    ccp.target("HP", 'button("logout")')

    return b.build()


def ecommerce_database(service: WebService | None = None) -> Database:
    """A small realistic catalog for the demo site."""
    service = service or ecommerce_service()
    return Database(
        service.schema.database,
        {
            "user": [("alice", "pw1"), ("bob", "pw2"), ("Admin", "root")],
            "prod_prices": [
                ("l1", "999"), ("l2", "1299"), ("d1", "599"), ("d2", "899"),
            ],
            "prod_names": [
                ("l1", "featherbook"), ("l2", "workbook pro"),
                ("d1", "towerline"), ("d2", "towerline xl"),
            ],
            "prod_category": [
                ("l1", "laptop"), ("l2", "laptop"),
                ("d1", "desktop"), ("d2", "desktop"),
            ],
            "criteria": [
                ("laptop", "ram", "8G"), ("laptop", "ram", "16G"),
                ("laptop", "hdd", "512G"), ("laptop", "display", "14in"),
                ("laptop", "display", "16in"),
                ("desktop", "ram", "16G"), ("desktop", "ram", "32G"),
                ("desktop", "hdd", "1T"),
            ],
            "laptop_spec": [
                ("l1", "8G", "512G", "14in"),
                ("l2", "16G", "512G", "16in"),
            ],
            "desktop_spec": [
                ("d1", "16G", "1T"),
                ("d2", "32G", "1T"),
            ],
        },
    )
