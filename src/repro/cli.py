"""Command-line interface.

Specifications and databases travel as JSON (see :mod:`repro.io`);
properties are written in the temporal text syntaxes of
:mod:`repro.ltl.parser` and :mod:`repro.ctl.parser`.

::

    python -m repro show spec.json
    python -m repro classify spec.json
    python -m repro audit spec.json
    python -m repro verify spec.json --ltl 'G !ERROR' --db catalog.json
    python -m repro verify spec.json --ctl 'AG EF HP'
    python -m repro verify spec.json --error-free --db catalog.json
    python -m repro simulate spec.json --db catalog.json --steps 12 --seed 7
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis import audit_service
from repro.ctl.parser import parse_ctl
from repro.io import database_from_dict, load_service, service_to_text
from repro.ltl.parser import parse_ltlfo
from repro.service.classify import classify
from repro.service.runs import RunContext, random_run
from repro.verifier import (
    UndecidableInstanceError,
    decidability_report,
    verify,
    verify_error_free,
)


def _load_databases(service, paths):
    databases = []
    for path in paths or []:
        data = json.loads(Path(path).read_text())
        databases.append(database_from_dict(data, service.schema.database))
    return databases or None


def _cmd_show(args) -> int:
    service = load_service(args.spec)
    print(service_to_text(service))
    return 0


def _cmd_classify(args) -> int:
    service = load_service(args.spec)
    print(classify(service).describe())
    return 0


def _cmd_audit(args) -> int:
    service = load_service(args.spec)
    print(audit_service(service))
    return 0


def _cmd_verify(args) -> int:
    service = load_service(args.spec)
    databases = _load_databases(service, args.db)
    options = {}
    if databases is not None:
        options["databases"] = databases
    if args.domain_size is not None:
        options["domain_size"] = args.domain_size

    if args.error_free:
        result = verify_error_free(service, **options)
    else:
        if args.ltl:
            prop = parse_ltlfo(
                args.ltl,
                input_constants=service.schema.input_constants,
                db_constants=service.schema.database.constants,
            )
        elif args.ctl:
            prop = parse_ctl(args.ctl)
        else:
            print(
                "error: pass --ltl/--ctl with a property, or --error-free",
                file=sys.stderr,
            )
            return 2
        if args.explain:
            print(decidability_report(service, prop))
            print()
        try:
            result = verify(service, prop, force=args.force, **options)
        except UndecidableInstanceError as exc:
            print(str(exc), file=sys.stderr)
            print(
                "hint: --force runs the bounded search anyway "
                "(sound for violations found)",
                file=sys.stderr,
            )
            return 3
    print(result.describe(service))
    return 0 if result.holds else 1


def _cmd_simulate(args) -> int:
    service = load_service(args.spec)
    databases = _load_databases(service, args.db)
    if not databases:
        print("error: simulate needs --db", file=sys.stderr)
        return 2
    sigma = dict(pair.split("=", 1) for pair in args.constant or [])
    ctx = RunContext(service, databases[0], sigma=sigma)
    run = random_run(ctx, args.steps, rng=args.seed)
    print(run.describe(service, limit=args.steps))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Verifier for data-driven Web services (PODS 2004).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    show = sub.add_parser("show", help="pretty-print a specification")
    show.add_argument("spec")
    show.set_defaults(func=_cmd_show)

    cls = sub.add_parser("classify", help="decidable-class report")
    cls.add_argument("spec")
    cls.set_defaults(func=_cmd_classify)

    audit = sub.add_parser("audit", help="static navigation/protocol audit")
    audit.add_argument("spec")
    audit.set_defaults(func=_cmd_audit)

    ver = sub.add_parser("verify", help="verify a temporal property")
    ver.add_argument("spec")
    ver.add_argument("--ltl", help="LTL-FO sentence (text syntax)")
    ver.add_argument("--ctl", help="CTL/CTL* formula (text syntax)")
    ver.add_argument("--error-free", action="store_true",
                     help="check error-freeness instead of a property")
    ver.add_argument("--db", action="append",
                     help="database JSON (repeatable); default: enumerate")
    ver.add_argument("--domain-size", type=int,
                     help="anonymous-domain size for the enumeration")
    ver.add_argument("--force", action="store_true",
                     help="run the bounded search on undecidable instances")
    ver.add_argument("--explain", action="store_true",
                     help="print the decidability report first")
    ver.set_defaults(func=_cmd_verify)

    sim = sub.add_parser("simulate", help="random run over a database")
    sim.add_argument("spec")
    sim.add_argument("--db", action="append", required=False)
    sim.add_argument("--steps", type=int, default=10)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--constant", action="append",
                     help="input constant value, e.g. name=alice (repeatable)")
    sim.set_defaults(func=_cmd_simulate)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
