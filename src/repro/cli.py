"""Command-line interface.

Specifications and databases travel as JSON (see :mod:`repro.io`);
properties are written in the temporal text syntaxes of
:mod:`repro.ltl.parser` and :mod:`repro.ctl.parser`.

::

    python -m repro show spec.json
    python -m repro classify spec.json
    python -m repro audit spec.json
    python -m repro lint spec.json
    python -m repro lint spec.json --format sarif -o report.sarif
    python -m repro lint spec.json --fail-on warning
    python -m repro verify spec.json --ltl 'G !ERROR' --db catalog.json
    python -m repro verify spec.json --ctl 'AG EF HP'
    python -m repro verify spec.json --error-free --db catalog.json
    python -m repro verify spec.json --ltl 'G !ERROR' --timeout-s 2 \
        --checkpoint ck.json          # bounded run, resumable
    python -m repro verify spec.json --ltl 'G !ERROR' --resume ck.json
    python -m repro verify spec.json --ltl 'G !ERROR' --workers 4
    python -m repro verify spec.json --ltl 'G !ERROR' --workers 4 \
        --retry 3 --unit-timeout-s 30 \
        --checkpoint ck.json --checkpoint-every 50   # fault-tolerant run
    python -m repro verify spec.json --ltl 'G !ERROR' \
        --faults '{"faults": [{"kind": "error", "db_index": 0}]}'
    python -m repro verify spec.json --ltl 'G !ERROR' \
        --trace trace.jsonl --progress
    python -m repro simulate spec.json --db catalog.json --steps 12 --seed 7

Exit codes (verify): 0 property holds, 1 property violated, 2 usage
error, 3 undecidable instance, 4 budget exceeded under ``--strict``,
5 inconclusive (budget exhausted, non-strict), 6 refused by the lint
pre-flight under ``--lint strict``, 130 interrupted by SIGINT/SIGTERM
(the final checkpoint is flushed first when ``--checkpoint`` is set).  For ``lint``: 0 clean (below the
``--fail-on`` threshold), 1 findings at/above the threshold, 2 usage
error.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from pathlib import Path

from repro.analysis import audit_service
from repro.ctl.parser import parse_ctl
from repro.io import (
    SpecFormatError,
    database_from_dict,
    load_checkpoint,
    load_service,
    save_checkpoint,
    service_to_text,
)
from repro.faults import FaultPlanError
from repro.lint import LintReport, Severity, SpecLintError, render
from repro.ltl.parser import parse_ltlfo
from repro.obs import JsonlTracer, ProgressTracer, TeeTracer
from repro.service.classify import classify
from repro.service.webservice import SpecificationError
from repro.service.runs import RunContext, random_run
from repro.verifier import (
    GLOBAL_STOP,
    CheckpointFormatError,
    CheckpointMismatchError,
    UndecidableInstanceError,
    VerificationBudgetExceeded,
    decidability_report,
    lint_preflight,
    verify,
    verify_error_free,
)
from repro.verifier.engine import add_cli_option, fold_budget

EXIT_HOLDS = 0
EXIT_VIOLATED = 1
EXIT_USAGE = 2
EXIT_UNDECIDABLE = 3
EXIT_BUDGET_STRICT = 4
EXIT_INCONCLUSIVE = 5
EXIT_LINT = 6
#: the conventional 128+SIGINT code: the run was interrupted by a signal
#: (checkpoint flushed first when --checkpoint is set)
EXIT_INTERRUPTED = 130

# repro lint exit codes
EXIT_LINT_CLEAN = 0
EXIT_LINT_FINDINGS = 1


class _CliError(Exception):
    """A usage-level failure: ``main`` prints one line and exits 2."""


def _load_spec(path):
    """Load a spec file, turning malformed payloads into one-line exits.

    A raw ``KeyError`` traceback out of :func:`service_from_dict` used
    to be the CLI's answer to a typo'd spec; every load error is now a
    coded one-liner (exit 2).
    """
    try:
        return load_service(path)
    except SpecFormatError as exc:
        raise _CliError(f"error: {path}: [{exc.code}] {exc}") from exc
    except SpecificationError as exc:
        problems = "; ".join(exc.problems[:3])
        raise _CliError(
            f"error: {path}: invalid specification: {problems} "
            "(run `repro lint` for the full report)"
        ) from exc
    except OSError as exc:
        raise _CliError(f"error: cannot read {path}: {exc}") from exc


def _load_databases(service, paths):
    databases = []
    for path in paths or []:
        try:
            data = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise _CliError(
                f"error: {path}: [bad-json] not valid JSON: {exc}"
            ) from exc
        except OSError as exc:
            raise _CliError(f"error: cannot read {path}: {exc}") from exc
        try:
            databases.append(database_from_dict(data, service.schema.database))
        except SpecFormatError as exc:
            raise _CliError(f"error: {path}: [{exc.code}] {exc}") from exc
    return databases or None


def _cmd_show(args) -> int:
    service = _load_spec(args.spec)
    print(service_to_text(service))
    return 0


def _cmd_classify(args) -> int:
    service = _load_spec(args.spec)
    print(classify(service).describe())
    return 0


def _cmd_audit(args) -> int:
    service = _load_spec(args.spec)
    print(audit_service(service))
    return 0


def _emit_lint_report(report: LintReport, args, facts=None) -> None:
    rendered = render(report, args.format, facts=facts)
    if args.output:
        Path(args.output).write_text(rendered + "\n")
        print(f"lint report written to {args.output}", file=sys.stderr)
    else:
        print(rendered)


def _cmd_lint(args) -> int:
    try:
        service = load_service(args.spec)
    except SpecificationError as exc:
        # Structurally invalid spec: render its S0xx diagnostics as the
        # report.  Structural problems are always errors, so any
        # --fail-on threshold is met.
        report = LintReport(
            service_name=Path(args.spec).stem, diagnostics=exc.diagnostics
        )
        _emit_lint_report(report, args)
        return EXIT_LINT_FINDINGS
    except SpecFormatError as exc:
        print(f"error: {args.spec}: [{exc.code}] {exc}", file=sys.stderr)
        return EXIT_USAGE
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot load {args.spec}: {exc}", file=sys.stderr)
        return EXIT_USAGE

    from repro.lint import lint_service

    report = lint_service(service)
    if args.baseline:
        from repro.lint import apply_baseline, load_baseline
        from repro.lint.baseline import BaselineFormatError

        try:
            known = load_baseline(args.baseline)
        except BaselineFormatError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        except OSError as exc:
            print(f"error: cannot load baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return EXIT_USAGE
        report, suppressed = apply_baseline(report, known)
        if suppressed:
            print(
                f"baseline {args.baseline}: suppressed {suppressed} known "
                f"finding{'s' if suppressed != 1 else ''}",
                file=sys.stderr,
            )
    facts = None
    if args.analyze:
        from repro.analysis.dataflow import static_facts

        facts = static_facts(service)
    _emit_lint_report(report, args, facts=facts)
    threshold = Severity(args.fail_on)
    return (
        EXIT_LINT_FINDINGS if report.at_least(threshold) else EXIT_LINT_CLEAN
    )


def _explain_budget_exceeded(exc: VerificationBudgetExceeded) -> str:
    lines = [
        f"verification stopped: {exc} (limit: {exc.limit or 'budget'}).",
        "The search space of these decision procedures is worst-case "
        "exponential; the configured budget ran out before it was "
        "exhausted.  The work already done is not lost — partial stats:",
    ]
    shown = {k: v for k, v in sorted(exc.stats.items()) if v}
    lines.append("  " + ", ".join(f"{k}={v}" for k, v in shown.items()))
    lines.append(
        "Raise --max-snapshots/--max-databases/--timeout-s, or drop "
        "--strict to get an INCONCLUSIVE verdict with a resumable "
        "checkpoint instead of this error."
    )
    return "\n".join(lines)


def _make_tracer(args):
    """Build the tracer requested by --trace/--progress (None = default)."""
    children = []
    if args.trace:
        children.append(JsonlTracer(args.trace))
    if args.progress:
        children.append(ProgressTracer())
    if not children:
        return None
    return children[0] if len(children) == 1 else TeeTracer(children)


def _install_stop_handlers():
    """Route SIGINT/SIGTERM through the engine's cooperative stop token.

    The handler only sets the token; the supervision loop observes it at
    its next scheduling step, emits ``run.interrupted``, flushes the
    final checkpoint, and winds down with an INCONCLUSIVE result —
    instead of a ``KeyboardInterrupt`` traceback mid-pool.  Returns the
    previous handlers for restoration.
    """

    def handler(signum, frame):
        GLOBAL_STOP.set(signal.Signals(signum).name)

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, handler)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    return previous


def _restore_stop_handlers(previous) -> None:
    for sig, old in previous.items():
        try:
            signal.signal(sig, old)
        except (ValueError, OSError):  # pragma: no cover
            pass
    GLOBAL_STOP.clear()


def _cmd_verify(args) -> int:
    service = _load_spec(args.spec)
    databases = _load_databases(service, args.db)
    options = {}
    if databases is not None:
        options["databases"] = databases
    if args.domain_size is not None:
        options["domain_size"] = args.domain_size
    # the budget-shaped flags fold into one governor via the shared
    # option table (always: the CLI's defaults must win over the
    # procedures' own)
    if args.max_snapshots is not None:
        options["max_snapshots"] = args.max_snapshots
    if args.max_databases is not None:
        options["max_databases"] = args.max_databases
    if args.timeout_s is not None:
        options["timeout_s"] = args.timeout_s
    options["strict"] = args.strict
    fold_budget(options, always=True)
    options["lint"] = args.lint
    if args.retry is not None:
        options["retry"] = args.retry
    if args.unit_timeout_s is not None:
        options["unit_timeout_s"] = args.unit_timeout_s
    if args.faults is not None:
        options["faults"] = args.faults
    if args.checkpoint and args.checkpoint_every is not None:
        # the engine rewrites the checkpoint file periodically and on
        # interruption; the CLI still writes the final one below
        options["checkpoint_path"] = args.checkpoint
        options["checkpoint_every"] = args.checkpoint_every
    tracer = _make_tracer(args)
    if tracer is not None:
        options["tracer"] = tracer
    handlers = _install_stop_handlers()
    try:
        return _run_verify(args, service, options)
    finally:
        _restore_stop_handlers(handlers)
        if tracer is not None:
            tracer.close()
            if args.trace:
                print(f"trace written to {args.trace}", file=sys.stderr)


def _run_verify(args, service, options) -> int:
    checkpoint = None
    if args.resume:
        try:
            checkpoint = load_checkpoint(args.resume)
        except CheckpointFormatError as exc:
            field = f" (field: {exc.field})" if exc.field else ""
            print(f"error: checkpoint {args.resume} is malformed{field}: "
                  f"{exc}", file=sys.stderr)
            return EXIT_USAGE
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot read checkpoint {args.resume}: {exc}",
                  file=sys.stderr)
            return EXIT_USAGE
        options["resume"] = checkpoint
        if args.domain_size is None and checkpoint.domain_size is not None:
            options["domain_size"] = checkpoint.domain_size
        if args.workers is None and checkpoint.workers is not None:
            options["workers"] = checkpoint.workers
    if args.workers is not None:
        options["workers"] = args.workers

    try:
        if args.error_free:
            if checkpoint is not None and checkpoint.procedure not in (
                    "", "verify_error_free"):
                print(
                    f"error: checkpoint {args.resume} was written by "
                    f"{checkpoint.procedure}, not verify_error_free — its "
                    "skipped databases were never checked for error-freeness",
                    file=sys.stderr,
                )
                return EXIT_USAGE
            # the same static pre-flight verify() runs — before any
            # database is enumerated, with strict-mode refusal (exit 6)
            diagnostics = lint_preflight(service, options)
            result = verify_error_free(service, **options)
            if diagnostics:
                result.diagnostics = list(diagnostics)
        else:
            if args.ltl:
                prop = parse_ltlfo(
                    args.ltl,
                    input_constants=service.schema.input_constants,
                    db_constants=service.schema.database.constants,
                )
            elif args.ctl:
                prop = parse_ctl(args.ctl)
            else:
                print(
                    "error: pass --ltl/--ctl with a property, or --error-free",
                    file=sys.stderr,
                )
                return EXIT_USAGE
            # the same label the verifiers store in their checkpoints
            prop_label = getattr(prop, "name", "") or str(prop)
            if (checkpoint is not None and checkpoint.property_name
                    and checkpoint.property_name != prop_label):
                print(
                    f"error: checkpoint {args.resume} was written for "
                    f"property {checkpoint.property_name!r}, not "
                    f"{prop_label!r} — its skipped databases were only "
                    "checked for that property",
                    file=sys.stderr,
                )
                return EXIT_USAGE
            if args.explain:
                print(decidability_report(service, prop))
                print()
            result = verify(service, prop, force=args.force, **options)
    except CheckpointMismatchError as exc:
        print(f"error: cannot resume from {args.resume}: {exc}",
              file=sys.stderr)
        print(
            "hint: rerun with the original parameters, or start a fresh "
            "run without --resume",
            file=sys.stderr,
        )
        return EXIT_USAGE
    except UndecidableInstanceError as exc:
        print(str(exc), file=sys.stderr)
        print(
            "hint: --force runs the bounded search anyway "
            "(sound for violations found)",
            file=sys.stderr,
        )
        return EXIT_UNDECIDABLE
    except VerificationBudgetExceeded as exc:
        print(_explain_budget_exceeded(exc), file=sys.stderr)
        if args.checkpoint and exc.checkpoint is not None:
            save_checkpoint(exc.checkpoint, args.checkpoint)
            print(f"checkpoint written to {args.checkpoint}", file=sys.stderr)
        return EXIT_BUDGET_STRICT
    except SpecLintError as exc:
        print(str(exc), file=sys.stderr)
        print(
            "hint: `repro lint` prints the full report; --lint warn "
            "proceeds anyway, attaching the findings to the result",
            file=sys.stderr,
        )
        return EXIT_LINT
    except FaultPlanError as exc:
        print(f"error: invalid fault plan: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except TypeError as exc:
        # e.g. checkpointing options on the fully propositional fast
        # path, which has no enumeration cursor to checkpoint
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    print(result.describe(service))
    if result.inconclusive:
        if args.checkpoint and result.checkpoint is not None:
            save_checkpoint(result.checkpoint, args.checkpoint)
            print(f"checkpoint written to {args.checkpoint}")
            print(f"resume with: --resume {args.checkpoint}")
        if result.stats.get("interrupted_by") == "interrupted":
            return EXIT_INTERRUPTED
        return EXIT_INCONCLUSIVE
    return EXIT_HOLDS if result.holds else EXIT_VIOLATED


def _cmd_simulate(args) -> int:
    service = _load_spec(args.spec)
    databases = _load_databases(service, args.db)
    if not databases:
        print("error: simulate needs --db", file=sys.stderr)
        return 2
    sigma = dict(pair.split("=", 1) for pair in args.constant or [])
    ctx = RunContext(service, databases[0], sigma=sigma)
    run = random_run(ctx, args.steps, rng=args.seed)
    print(run.describe(service, limit=args.steps))
    return 0


def _cmd_serve(args) -> int:
    # imported here so plain CLI verification never pays for the server
    # stack (and vice versa: the daemon has no argparse dependency)
    from repro.io import SpecFormatError as _SFE
    from repro.server import create_server, serve

    server = create_server(
        args.host, args.port,
        job_workers=args.job_workers,
        spool_dir=args.spool_dir,
        quiet=args.quiet,
    )
    spec_files: list[Path] = []
    for raw in args.specs:
        p = Path(raw)
        if p.is_dir():
            spec_files.extend(sorted(p.glob("*.json")))
        else:
            spec_files.append(p)
    for path in spec_files:
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            entry, _created = server.registry.register(data)
        except json.JSONDecodeError as exc:
            raise _CliError(
                f"error: {path}: [bad-json] not valid JSON: {exc}"
            ) from exc
        except _SFE as exc:
            raise _CliError(f"error: {path}: [{exc.code}] {exc}") from exc
        except OSError as exc:
            raise _CliError(f"error: cannot read {path}: {exc}") from exc
        print(f"registered {entry.spec_id}  {entry.summary()['name']} "
              f"({entry.n_plans} plans)  [{path}]", file=sys.stderr)
    host, port = server.server_address[:2]
    print(f"repro serve: listening on http://{host}:{port} "
          f"({len(server.registry)} specs registered, "
          f"{args.job_workers} job workers)", file=sys.stderr)
    serve(server)
    return EXIT_HOLDS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Verifier for data-driven Web services (PODS 2004).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    show = sub.add_parser("show", help="pretty-print a specification")
    show.add_argument("spec")
    show.set_defaults(func=_cmd_show)

    cls = sub.add_parser("classify", help="decidable-class report")
    cls.add_argument("spec")
    cls.set_defaults(func=_cmd_classify)

    audit = sub.add_parser("audit", help="static navigation/protocol audit")
    audit.add_argument("spec")
    audit.set_defaults(func=_cmd_audit)

    lint = sub.add_parser(
        "lint", help="static analysis with coded, located diagnostics"
    )
    lint.add_argument("spec")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text",
                      help="report format (default: text)")
    lint.add_argument("--fail-on", choices=("error", "warning", "note"),
                      default="error", dest="fail_on",
                      help="exit 1 when findings at or above this severity "
                           "exist; note < warning < error (default: error)")
    lint.add_argument("--output", "-o", metavar="FILE",
                      help="write the report to FILE instead of stdout")
    lint.add_argument("--analyze", action="store_true",
                      help="include the whole-service dataflow facts "
                           "(reachability, input-constant propagation, "
                           "relation liveness, dead rules) in the report")
    lint.add_argument("--baseline", metavar="FILE",
                      help="suppress findings whose fingerprints appear in "
                           "FILE (a baseline, lint JSON, or SARIF report)")
    lint.set_defaults(func=_cmd_lint)

    ver = sub.add_parser("verify", help="verify a temporal property")
    ver.add_argument("spec")
    ver.add_argument("--ltl", help="LTL-FO sentence (text syntax)")
    ver.add_argument("--ctl", help="CTL/CTL* formula (text syntax)")
    ver.add_argument("--error-free", action="store_true",
                     help="check error-freeness instead of a property")
    ver.add_argument("--db", action="append",
                     help="database JSON (repeatable); default: enumerate")
    # option-table flags are generated from repro.verifier.engine's
    # shared OPTION_TABLE, so the CLI, the server wire schema and the
    # entry-point signatures can never drift apart
    add_cli_option(ver, "domain_size")
    ver.add_argument("--force", action="store_true",
                     help="run the bounded search on undecidable instances")
    ver.add_argument("--explain", action="store_true",
                     help="print the decidability report first")
    add_cli_option(ver, "max_snapshots")
    add_cli_option(ver, "max_databases")
    add_cli_option(ver, "timeout_s")
    add_cli_option(ver, "workers")
    add_cli_option(ver, "strict")
    ver.add_argument("--resume", metavar="CHECKPOINT",
                     help="resume from a checkpoint JSON written by a "
                          "previous interrupted run")
    ver.add_argument("--checkpoint", metavar="PATH",
                     help="where to write the resume checkpoint when the "
                          "budget runs out or the run is interrupted")
    add_cli_option(ver, "checkpoint_every")
    add_cli_option(ver, "retry")
    add_cli_option(ver, "unit_timeout_s")
    add_cli_option(ver, "faults")
    ver.add_argument("--trace", metavar="FILE",
                     help="stream structured trace events (JSONL) to FILE; "
                          "see the repro.obs event taxonomy")
    ver.add_argument("--progress", action="store_true",
                     help="print coarse progress events to stderr while "
                          "the verification runs")
    add_cli_option(ver, "lint")
    ver.set_defaults(func=_cmd_verify)

    sim = sub.add_parser("simulate", help="random run over a database")
    sim.add_argument("spec")
    sim.add_argument("--db", action="append", required=False)
    sim.add_argument("--steps", type=int, default=10)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--constant", action="append",
                     help="input constant value, e.g. name=alice (repeatable)")
    sim.set_defaults(func=_cmd_simulate)

    srv = sub.add_parser(
        "serve",
        help="run the verification daemon (HTTP, compiled-spec registry)",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8080,
                     help="TCP port (0 picks a free one)")
    srv.add_argument("--specs", action="append", default=[],
                     help="spec file or directory of *.json to preregister "
                          "(repeatable)")
    srv.add_argument("--job-workers", type=int, default=2,
                     help="verification worker threads (default 2)")
    srv.add_argument("--spool-dir", default=None,
                     help="directory for per-job event/checkpoint files "
                          "(default: a fresh temp dir)")
    srv.add_argument("--quiet", action="store_true",
                     help="suppress per-request access logging")
    srv.set_defaults(func=_cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except _CliError as exc:
        print(exc, file=sys.stderr)
        return EXIT_USAGE
    except BrokenPipeError:
        # stdout went away (e.g. piped into `head`); exit quietly the
        # way POSIX filters do instead of dumping a traceback
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return EXIT_USAGE


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
