"""Relational substrate: symbols, schemas, instances, databases.

This subpackage provides the vocabulary layer of the PODS 2004 model
(Definition 2.1): relation symbols classified by role (database, state,
input, action, and the derived ``prev`` vocabulary), relational schemas,
finite relational instances with an active-domain view, fixed databases,
plus bounded enumeration and random generation of instances used by the
verifier and the test suite.
"""

from repro.schema.symbols import (
    RelationKind,
    RelationSymbol,
    database_relation,
    state_relation,
    input_relation,
    action_relation,
    prev_symbol,
)
from repro.schema.schema import RelationalSchema, ServiceSchema
from repro.schema.instances import Instance, union_active_domain
from repro.schema.database import Database
from repro.schema.enumerate import (
    enumerate_relations,
    enumerate_instances,
    enumerate_databases,
    canonical_domain,
)
from repro.schema.generators import random_instance, random_database

__all__ = [
    "RelationKind",
    "RelationSymbol",
    "database_relation",
    "state_relation",
    "input_relation",
    "action_relation",
    "prev_symbol",
    "RelationalSchema",
    "ServiceSchema",
    "Instance",
    "union_active_domain",
    "Database",
    "enumerate_relations",
    "enumerate_instances",
    "enumerate_databases",
    "canonical_domain",
    "random_instance",
    "random_database",
]
