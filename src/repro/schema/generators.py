"""Seeded random generators for instances and databases.

Used by the benchmark harness (workload generation) and by randomized
tests.  All generators take an explicit :class:`random.Random` or seed so
that every run is reproducible.
"""

from __future__ import annotations

import itertools
import random
from typing import Hashable, Sequence

from repro.schema.database import Database
from repro.schema.instances import Instance
from repro.schema.schema import RelationalSchema
from repro.schema.symbols import RelationSymbol

Value = Hashable


def _rng(seed: int | random.Random | None) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def random_relation(
    arity: int,
    domain: Sequence[Value],
    density: float = 0.3,
    rng: int | random.Random | None = None,
) -> frozenset:
    """A random relation: each potential tuple kept with prob ``density``."""
    rand = _rng(rng)
    tuples = itertools.product(domain, repeat=arity)
    return frozenset(t for t in tuples if rand.random() < density)


def random_instance(
    schema: RelationalSchema,
    domain: Sequence[Value],
    density: float = 0.3,
    rng: int | random.Random | None = None,
) -> Instance:
    """A random instance of ``schema`` over ``domain``."""
    rand = _rng(rng)
    contents: dict[RelationSymbol, frozenset] = {}
    for sym in sorted(schema.relations):
        contents[sym] = random_relation(sym.arity, domain, density, rand)
    return Instance(contents)


def random_database(
    schema: RelationalSchema,
    domain: Sequence[Value],
    density: float = 0.3,
    rng: int | random.Random | None = None,
) -> Database:
    """A random database: random facts plus random constant interpretations."""
    rand = _rng(rng)
    inst = random_instance(schema, domain, density, rand)
    constants = {name: rand.choice(list(domain)) for name in sorted(schema.constants)}
    return Database(
        schema,
        {sym: rel for sym, rel in inst},
        constants,
        extra_domain=domain,
    )
