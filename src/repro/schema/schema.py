"""Relational schemas and the four-part schema of a Web service.

A :class:`RelationalSchema` is a finite set of relation symbols plus a
finite set of constant symbols (paper §2).  A :class:`ServiceSchema`
bundles the four disjoint schemas **D**, **S**, **I**, **A** of a Web
service together with the derived ``Prev_I`` vocabulary and the set of
input constants ``const(I)``, and offers the lookups the rest of the
library needs (symbol by name, vocabulary unions for rule checking).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.schema.symbols import (
    RelationKind,
    RelationSymbol,
    prev_symbol,
)


@dataclass(frozen=True)
class RelationalSchema:
    """A finite set of relation symbols together with constant symbols.

    ``constants`` are the *names* of constant symbols belonging to the
    schema.  For the input schema these are the paper's *input constants*
    (``name``, ``password``, ...) whose interpretation the user provides
    during the run; for the database schema they are interpreted by the
    database instance.
    """

    relations: frozenset[RelationSymbol] = frozenset()
    constants: frozenset[str] = frozenset()

    def __init__(
        self,
        relations: Iterable[RelationSymbol] = (),
        constants: Iterable[str] = (),
    ) -> None:
        object.__setattr__(self, "relations", frozenset(relations))
        object.__setattr__(self, "constants", frozenset(constants))
        names = [r.name for r in self.relations]
        if len(names) != len(set(names)):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate relation names in schema: {dupes}")

    def __iter__(self) -> Iterator[RelationSymbol]:
        return iter(sorted(self.relations))

    def __len__(self) -> int:
        return len(self.relations)

    def __contains__(self, item: RelationSymbol | str) -> bool:
        if isinstance(item, str):
            return any(r.name == item for r in self.relations)
        return item in self.relations

    def get(self, name: str) -> RelationSymbol | None:
        """The relation symbol called ``name``, or None."""
        for rel in self.relations:
            if rel.name == name:
                return rel
        return None

    def __getitem__(self, name: str) -> RelationSymbol:
        rel = self.get(name)
        if rel is None:
            raise KeyError(f"no relation named {name!r} in schema")
        return rel

    def union(self, *others: "RelationalSchema") -> "RelationalSchema":
        """Schema union (relations and constants)."""
        rels: set[RelationSymbol] = set(self.relations)
        consts: set[str] = set(self.constants)
        for other in others:
            rels |= other.relations
            consts |= other.constants
        return RelationalSchema(rels, consts)

    @property
    def max_arity(self) -> int:
        """Largest arity among the schema's relations (0 if empty)."""
        return max((r.arity for r in self.relations), default=0)

    def restrict(self, names: Iterable[str]) -> "RelationalSchema":
        """Sub-schema containing only the relations named in ``names``."""
        wanted = set(names)
        return RelationalSchema(
            (r for r in self.relations if r.name in wanted), self.constants
        )


@dataclass(frozen=True)
class ServiceSchema:
    """The four disjoint schemas of a Web service plus derived vocabulary.

    Mirrors the tuple ``<D, S, I, A>`` of Definition 2.1.  The ``prev``
    schema is derived: one ``prev_I`` symbol per input relation.  The
    constructor enforces the paper's disjointness requirement on relation
    symbols (constants may be shared).
    """

    database: RelationalSchema
    state: RelationalSchema
    input: RelationalSchema
    action: RelationalSchema
    prev: RelationalSchema = field(init=False)

    def __post_init__(self) -> None:
        seen: dict[str, RelationKind] = {}
        for schema in (self.database, self.state, self.input, self.action):
            for rel in schema.relations:
                if rel.name in seen:
                    raise ValueError(
                        f"relation name {rel.name!r} appears in both the "
                        f"{seen[rel.name].value} and {rel.kind.value} schemas"
                    )
                seen[rel.name] = rel.kind
        prev_rels = [prev_symbol(i) for i in self.input.relations]
        object.__setattr__(self, "prev", RelationalSchema(prev_rels))

    @property
    def input_constants(self) -> frozenset[str]:
        """``const(I)`` — the input constants of the service."""
        return self.input.constants

    def resolve(self, name: str) -> RelationSymbol | None:
        """Look up a relation symbol by name across all five vocabularies."""
        for schema in (self.database, self.state, self.input, self.action, self.prev):
            rel = schema.get(name)
            if rel is not None:
                return rel
        return None

    def full_vocabulary(self) -> RelationalSchema:
        """Union of D, S, I, A and Prev_I (for LTL-FO property formulas)."""
        return self.database.union(self.state, self.input, self.action, self.prev)

    def rule_vocabulary(self, page_inputs: Iterable[RelationSymbol]) -> RelationalSchema:
        """Vocabulary available to state/action/target rules of a page.

        Definition 2.1 allows those rules to mention ``D ∪ S ∪ Prev_I ∪
        const(I) ∪ I_W`` where ``I_W`` are the page's own input relations.
        """
        page_schema = RelationalSchema(page_inputs, self.input.constants)
        return self.database.union(self.state, self.prev, page_schema)

    def input_rule_vocabulary(self) -> RelationalSchema:
        """Vocabulary available to input-option rules.

        Definition 2.1 allows input rules to mention ``D ∪ S ∪ Prev_I ∪
        const(I)`` (but not the page's current inputs).
        """
        consts = RelationalSchema((), self.input.constants)
        return self.database.union(self.state, self.prev, consts)

    @property
    def max_arity(self) -> int:
        """Largest arity across all four schemas."""
        return max(
            self.database.max_arity,
            self.state.max_arity,
            self.input.max_arity,
            self.action.max_arity,
        )
