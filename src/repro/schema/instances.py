"""Finite relational instances.

An :class:`Instance` maps relation symbols to finite relations (sets of
tuples of domain elements).  Propositional symbols (arity 0) are mapped to
a truth value, represented internally as the presence or absence of the
empty tuple — so one uniform representation covers both cases.

Instances are immutable; update operations return new instances.  This
keeps run semantics functional (a configuration can be hashed and memoised
by the verifier) and rules out aliasing bugs.

Domain elements may be any hashable Python values; the library's demos use
strings and ints.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator, Mapping

from repro.schema.symbols import RelationSymbol

Value = Hashable
Tuple_ = tuple  # tuples of Value


class Instance:
    """An immutable finite relational instance.

    Parameters
    ----------
    contents:
        Mapping from :class:`RelationSymbol` to an iterable of tuples.
        Tuples must match the symbol's arity.  A propositional symbol may
        be given a bool instead of a tuple set.
    """

    __slots__ = ("_relations", "_hash")

    def __init__(
        self,
        contents: Mapping[RelationSymbol, Iterable[tuple] | bool] | None = None,
    ) -> None:
        relations: dict[RelationSymbol, frozenset] = {}
        for sym, tuples in (contents or {}).items():
            if isinstance(tuples, bool):
                rel = frozenset([()]) if tuples else frozenset()
            else:
                rel = frozenset(tuple(t) for t in tuples)
            for t in rel:
                if len(t) != sym.arity:
                    raise ValueError(
                        f"tuple {t!r} has length {len(t)}, but relation "
                        f"{sym} has arity {sym.arity}"
                    )
            if rel:
                relations[sym] = rel
        self._relations: dict[RelationSymbol, frozenset] = relations
        self._hash: int | None = None

    # -- queries ---------------------------------------------------------

    def tuples(self, sym: RelationSymbol) -> frozenset:
        """The (possibly empty) relation interpreting ``sym``."""
        return self._relations.get(sym, frozenset())

    def holds(self, sym: RelationSymbol, values: tuple = ()) -> bool:
        """Whether ``sym(values)`` is true in this instance."""
        return values in self._relations.get(sym, frozenset())

    def truth(self, sym: RelationSymbol) -> bool:
        """Truth value of a propositional (arity-0) symbol."""
        if sym.arity != 0:
            raise ValueError(f"{sym} is not propositional")
        return () in self._relations.get(sym, frozenset())

    def is_empty(self, sym: RelationSymbol) -> bool:
        """Whether the relation interpreting ``sym`` is empty."""
        return sym not in self._relations

    @property
    def nonempty_symbols(self) -> frozenset[RelationSymbol]:
        """Symbols interpreted by a nonempty relation."""
        return frozenset(self._relations)

    def active_domain(self) -> frozenset:
        """All domain elements occurring in some tuple of the instance."""
        return frozenset(v for rel in self._relations.values() for t in rel for v in t)

    def total_tuples(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(rel) for rel in self._relations.values())

    # -- functional updates ----------------------------------------------

    def with_relation(
        self, sym: RelationSymbol, tuples: Iterable[tuple] | bool
    ) -> "Instance":
        """A copy of this instance with ``sym`` reinterpreted as ``tuples``."""
        contents: dict[RelationSymbol, Iterable[tuple] | bool] = dict(self._relations)
        contents[sym] = tuples
        return Instance(contents)

    def merged(self, other: "Instance") -> "Instance":
        """Union of two instances, relation by relation."""
        contents: dict[RelationSymbol, frozenset] = dict(self._relations)
        for sym, rel in other._relations.items():
            contents[sym] = contents.get(sym, frozenset()) | rel
        return Instance(contents)

    def restricted(self, symbols: Iterable[RelationSymbol]) -> "Instance":
        """The instance restricted to the given symbols."""
        wanted = set(symbols)
        return Instance(
            {sym: rel for sym, rel in self._relations.items() if sym in wanted}
        )

    def renamed(self, mapping: Mapping[Value, Value]) -> "Instance":
        """Apply a renaming of domain elements (used by iso-reduction)."""
        return Instance(
            {
                sym: {tuple(mapping.get(v, v) for v in t) for t in rel}
                for sym, rel in self._relations.items()
            }
        )

    # -- dunder plumbing ---------------------------------------------------

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self._relations == other._relations

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._relations.items()))
        return self._hash

    def __getstate__(self):
        # Only the relations travel: the cached hash is process-local
        # (string hashing is seeded per interpreter), so shipping it to
        # a worker would poison that worker's hash-based containers.
        return self._relations

    def __setstate__(self, state) -> None:
        self._relations = state
        self._hash = None

    def __bool__(self) -> bool:
        return bool(self._relations)

    def __iter__(self) -> Iterator[tuple[RelationSymbol, frozenset]]:
        return iter(sorted(self._relations.items(), key=lambda kv: kv[0]))

    def __repr__(self) -> str:
        if not self._relations:
            return "Instance({})"
        parts = []
        for sym, rel in sorted(self._relations.items(), key=lambda kv: kv[0]):
            shown = sorted(rel, key=repr)
            parts.append(f"{sym.name}: {shown}")
        return "Instance({" + ", ".join(parts) + "})"

    @staticmethod
    def empty() -> "Instance":
        """The everywhere-empty instance."""
        return _EMPTY


_EMPTY = Instance()


def union_active_domain(*instances: Instance) -> frozenset:
    """Union of the active domains of several instances."""
    dom: set = set()
    for inst in instances:
        dom |= inst.active_domain()
    return frozenset(dom)
