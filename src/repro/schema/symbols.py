"""Relation symbols and their roles.

The paper's Web service model (Definition 2.1) uses four disjoint
relational schemas — database **D**, state **S**, input **I**, action
**A** — plus the derived vocabulary ``Prev_I`` containing one symbol
``prev_I`` per input relation ``I``.  A :class:`RelationSymbol` carries its
name, arity and a :class:`RelationKind` tag so that rule well-formedness
(which vocabularies a rule formula may mention) can be checked statically.

Relation symbols of arity zero are *propositions* (paper §2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RelationKind(enum.Enum):
    """Role of a relation symbol in a Web service specification."""

    DATABASE = "database"
    STATE = "state"
    INPUT = "input"
    ACTION = "action"
    PREV = "prev"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RelationKind.{self.name}"


#: Prefix used for the derived ``prev_I`` symbols.
PREV_PREFIX = "prev_"


@dataclass(frozen=True, order=True)
class RelationSymbol:
    """A named relation symbol with a fixed arity and role.

    Instances are immutable, hashable, and ordered (by name then arity),
    so they can serve as dictionary keys and be sorted deterministically
    for reproducible output.
    """

    name: str
    arity: int
    kind: RelationKind

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("relation symbol needs a non-empty name")
        if self.arity < 0:
            raise ValueError(f"negative arity for relation {self.name!r}")

    @property
    def is_proposition(self) -> bool:
        """True when the symbol has arity zero (a propositional symbol)."""
        return self.arity == 0

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"

    def __repr__(self) -> str:
        return f"RelationSymbol({self.name!r}, {self.arity}, {self.kind.value!r})"


def database_relation(name: str, arity: int) -> RelationSymbol:
    """Create a database relation symbol (fixed throughout a run)."""
    return RelationSymbol(name, arity, RelationKind.DATABASE)


def state_relation(name: str, arity: int = 0) -> RelationSymbol:
    """Create a state relation symbol (updated by state rules)."""
    return RelationSymbol(name, arity, RelationKind.STATE)


def input_relation(name: str, arity: int = 0) -> RelationSymbol:
    """Create an input relation symbol (holds the user's current choice)."""
    return RelationSymbol(name, arity, RelationKind.INPUT)


def action_relation(name: str, arity: int = 0) -> RelationSymbol:
    """Create an action relation symbol (produced by action rules)."""
    return RelationSymbol(name, arity, RelationKind.ACTION)


def prev_symbol(input_sym: RelationSymbol) -> RelationSymbol:
    """The ``prev_I`` symbol for input relation ``I`` (paper §2).

    ``prev_I`` has the same arity as ``I`` and holds the input to ``I``
    at the previous step of the run.
    """
    if input_sym.kind is not RelationKind.INPUT:
        raise ValueError(f"prev_symbol expects an input relation, got {input_sym}")
    return RelationSymbol(PREV_PREFIX + input_sym.name, input_sym.arity, RelationKind.PREV)


def unprev_name(prev_sym: RelationSymbol) -> str:
    """Name of the input relation a ``prev_I`` symbol refers to."""
    if prev_sym.kind is not RelationKind.PREV:
        raise ValueError(f"unprev_name expects a prev relation, got {prev_sym}")
    return prev_sym.name[len(PREV_PREFIX):]
