"""Fixed databases.

A :class:`Database` is a relational instance over the database schema
**D** together with an interpretation of the database constant symbols
(paper §2: "a mapping associating ... to each constant symbol an element
of Dom").  The database is fixed throughout each run (Definition 2.1).

The *domain* of a database is its active domain — elements occurring in
tuples or as constant interpretations — optionally widened with extra
elements so the verifier can quantify user inputs over values that do not
yet occur anywhere (genericity cutoff, see ``repro.verifier.linear``).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.schema.instances import Instance
from repro.schema.schema import RelationalSchema
from repro.schema.symbols import RelationKind, RelationSymbol

Value = Hashable


class Database:
    """A database instance: facts plus constant interpretations.

    Parameters
    ----------
    schema:
        The database schema **D** (used to validate facts and constants).
    facts:
        Mapping relation name or symbol -> iterable of tuples (or a bool
        for propositions).
    constants:
        Interpretation of the schema's constant symbols.  Constants not
        listed are interpreted as themselves (the string is the value),
        the convention used throughout the demos.
    extra_domain:
        Additional domain elements beyond the active domain.
    """

    __slots__ = ("schema", "instance", "constants", "_domain")

    def __init__(
        self,
        schema: RelationalSchema,
        facts: Mapping[RelationSymbol | str, Iterable[tuple] | bool] | None = None,
        constants: Mapping[str, Value] | None = None,
        extra_domain: Iterable[Value] = (),
    ) -> None:
        self.schema = schema
        resolved: dict[RelationSymbol, Iterable[tuple] | bool] = {}
        for key, tuples in (facts or {}).items():
            if isinstance(key, str):
                sym = schema.get(key)
                if sym is None:
                    raise ValueError(
                        f"{key!r} is not a relation of the database schema"
                    )
            else:
                sym = key
            if sym not in schema.relations:
                raise ValueError(f"{sym} is not part of the database schema")
            if sym.kind is not RelationKind.DATABASE:
                raise ValueError(f"{sym} is not a database relation")
            resolved[sym] = tuples
        self.instance = Instance(resolved)

        interp: dict[str, Value] = {name: name for name in schema.constants}
        for name, value in (constants or {}).items():
            if name not in schema.constants:
                raise ValueError(f"{name!r} is not a constant of the database schema")
            interp[name] = value
        self.constants: dict[str, Value] = interp

        dom = set(self.instance.active_domain())
        dom.update(interp.values())
        dom.update(extra_domain)
        self._domain: frozenset = frozenset(dom)

    # -- queries ---------------------------------------------------------

    @property
    def domain(self) -> frozenset:
        """Active domain plus any extra elements supplied at construction."""
        return self._domain

    def tuples(self, sym: RelationSymbol | str) -> frozenset:
        """Facts stored for a database relation."""
        if isinstance(sym, str):
            sym = self.schema[sym]
        return self.instance.tuples(sym)

    def holds(self, sym: RelationSymbol | str, values: tuple = ()) -> bool:
        """Whether the fact ``sym(values)`` is in the database."""
        if isinstance(sym, str):
            sym = self.schema[sym]
        return self.instance.holds(sym, values)

    def constant(self, name: str) -> Value:
        """Interpretation of a database constant symbol."""
        try:
            return self.constants[name]
        except KeyError:
            raise KeyError(f"{name!r} is not a database constant") from None

    def widened(self, extra: Iterable[Value]) -> "Database":
        """A copy of this database with extra domain elements."""
        return Database(
            self.schema,
            {sym: rel for sym, rel in self.instance},
            self.constants,
            extra_domain=set(self._domain) | set(extra),
        )

    def size(self) -> int:
        """Number of elements in the domain."""
        return len(self._domain)

    # -- dunder plumbing ---------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return (
            self.schema == other.schema
            and self.instance == other.instance
            and self.constants == other.constants
            and self._domain == other._domain
        )

    def __hash__(self) -> int:
        return hash((self.instance, frozenset(self.constants.items()), self._domain))

    def __repr__(self) -> str:
        return (
            f"Database(domain={sorted(self._domain, key=repr)}, "
            f"facts={self.instance!r}, constants={self.constants!r})"
        )
