"""Bounded enumeration of relations, instances and databases.

The decidability results of the paper rest on small-model arguments: when
an input-bounded service violates a property, a violation is already
witnessed over a small domain (Local Run Lemma for Theorem 3.5, Lemma A.11
for Theorem 4.4).  The verifier therefore enumerates databases over a
canonical domain of bounded size.  Because properties of runs are generic
(invariant under renaming of non-constant elements), databases are only
needed *up to isomorphism fixing the constants*; :func:`enumerate_databases`
can prune isomorphic duplicates, which shrinks the search by roughly a
factor of ``k!`` for ``k`` anonymous elements.
"""

from __future__ import annotations

import itertools
from typing import Callable, Hashable, Iterable, Iterator, Mapping, Sequence

from repro.schema.database import Database
from repro.schema.instances import Instance
from repro.schema.schema import RelationalSchema

Value = Hashable


def canonical_domain(size: int, prefix: str = "d") -> list[str]:
    """The canonical ``size``-element domain ``[d0, d1, ...]``."""
    return [f"{prefix}{i}" for i in range(size)]


def enumerate_relations(arity: int, domain: Sequence[Value]) -> Iterator[frozenset]:
    """All relations of the given arity over ``domain``.

    Yields ``2 ** len(domain)**arity`` relations; use only for small
    domains/arities.  Arity 0 yields the two propositional values.
    """
    all_tuples = list(itertools.product(domain, repeat=arity))
    for bits in itertools.product((False, True), repeat=len(all_tuples)):
        yield frozenset(t for t, bit in zip(all_tuples, bits) if bit)


def _lazy_product(
    factories: Sequence[Callable[[], Iterator]],
) -> Iterator[tuple]:
    """``itertools.product`` over regenerable iterators, fully streaming.

    ``itertools.product`` materialises every input up front, which for
    relation enumerations means building ``2**(|domain|**arity)``
    frozensets before the first combination appears.  Regenerating each
    level on demand yields the first combination immediately and keeps
    memory flat, in exactly the same order ``product`` would produce —
    checkpoint cursors depend on that determinism.
    """
    if not factories:
        yield ()
        return
    head, rest = factories[0], factories[1:]
    for item in head():
        for tail in _lazy_product(rest):
            yield (item,) + tail


def enumerate_instances(
    schema: RelationalSchema,
    domain: Sequence[Value],
    on_step: Callable[[], None] | None = None,
) -> Iterator[Instance]:
    """All instances of ``schema`` over ``domain`` (cartesian product).

    ``on_step`` is invoked once per candidate instance — the resource
    governor's cooperative hook, so wall-clock deadlines fire even while
    an exponentially large enumeration is still streaming.
    """
    symbols = sorted(schema.relations)
    factories = [
        (lambda arity=sym.arity: enumerate_relations(arity, domain))
        for sym in symbols
    ]
    for combo in _lazy_product(factories):
        if on_step is not None:
            on_step()
        yield Instance(dict(zip(symbols, combo)))


def _canonical_form(
    instance: Instance,
    constants: Mapping[str, Value],
    anonymous: Sequence[Value],
) -> tuple:
    """A canonical key for an instance up to permutations of ``anonymous``.

    Two instances that differ only by a bijective renaming of the
    anonymous (non-constant) elements map to the same key.  Computed by
    brute-force minimisation over all permutations, which is fine for the
    domain sizes (<= 6) the verifier uses.
    """
    const_items = tuple(sorted(constants.items()))
    best: tuple | None = None
    for perm in itertools.permutations(anonymous):
        mapping = {a: b for a, b in zip(anonymous, perm)}
        renamed = instance.renamed(mapping)
        key = tuple(
            (sym.name, tuple(sorted(rel, key=repr)))
            for sym, rel in sorted(renamed, key=lambda kv: kv[0])
        )
        if best is None or key < best:
            best = key
    return (const_items, best)


def enumerate_databases(
    schema: RelationalSchema,
    domain_size: int,
    constants: Mapping[str, Value] | None = None,
    up_to_iso: bool = True,
    domain: Sequence[Value] | None = None,
    fixed_elements: Iterable[Value] = (),
    on_step: Callable[[], None] | None = None,
) -> Iterator[Database]:
    """All databases of ``schema`` over a canonical domain.

    Parameters
    ----------
    schema:
        Database schema **D**.
    domain_size:
        Number of domain elements.  Constant interpretations are placed on
        the first elements unless ``constants`` pins them explicitly.
    constants:
        Optional explicit interpretations for (some) schema constants;
        remaining constants are interpreted over the canonical domain in
        every possible way.
    up_to_iso:
        Prune databases isomorphic (over non-constant elements) to an
        earlier one.
    domain:
        Explicit domain to use instead of the canonical one.
    fixed_elements:
        Domain elements with fixed identity (e.g. the specification's
        literal constants): iso-pruning never permutes them.
    on_step:
        Cooperative callback invoked once per candidate instance, even
        for candidates the iso-pruning discards — lets a resource
        governor interrupt mid-enumeration.
    """
    dom = list(domain) if domain is not None else canonical_domain(domain_size)
    fixed_set = set(fixed_elements)
    pinned = dict(constants or {})
    free_constants = sorted(schema.constants - set(pinned))

    const_assignments: Iterable[dict[str, Value]]
    if free_constants:
        const_assignments = (
            {**pinned, **dict(zip(free_constants, values))}
            for values in itertools.product(dom, repeat=len(free_constants))
        )
    else:
        const_assignments = iter([dict(pinned)])

    for interp in const_assignments:
        fixed = set(interp.values()) | fixed_set
        anonymous = [d for d in dom if d not in fixed]
        seen: set[tuple] = set()
        for inst in enumerate_instances(schema, dom, on_step=on_step):
            if up_to_iso and anonymous:
                key = _canonical_form(inst, interp, anonymous)
                if key in seen:
                    continue
                seen.add(key)
            yield Database(
                schema,
                {sym: rel for sym, rel in inst},
                interp,
                extra_domain=dom,
            )


def count_databases(schema: RelationalSchema, domain_size: int) -> int:
    """Number of databases over the canonical domain, before iso-pruning.

    Useful for sizing a verification sweep up front.
    """
    n_tuples = sum(domain_size**sym.arity for sym in schema.relations)
    n_consts = len(schema.constants)
    return (2**n_tuples) * (domain_size**n_consts)
