"""Verify the paper's properties on the running e-commerce example.

Reproduces the §3 story end to end on the input-bounded core of the
Figure 2 store (see repro/demo/core.py):

1. error-freeness — the paper's "minimum soundness check";
2. property (4) (Examples 3.3/3.4): every shipped product was paid for
   at the right amount — HOLDS on the correct service;
3. the same property on a broken variant whose payment box accepts any
   catalog price — VIOLATED, with a concrete pay-999-get-the-1299-laptop
   lasso;
4. property (1) (Example 3.2): a navigation property that fails because
   the user may always log out.

Run with:  python examples/ecommerce_verification.py
"""

from repro.demo import (
    core_database,
    core_service,
    property_1_navigation,
    property_4_paid_before_ship,
)
from repro.demo.core import core_service_broken
from repro.verifier import verify_error_free, verify_ltlfo

#: Remark 3.6 session scoping: verify the runs of the known user.
SESSION_SIGMAS = [
    {"name": "alice", "password": "pw1"},
    {"name": "alice", "password": "wrong-password"},
]


def main() -> None:
    service = core_service()
    database = core_database(service)

    print("=" * 72)
    print("1. error-freeness (Theorem 3.5(i))")
    print("=" * 72)
    result = verify_error_free(
        service, databases=[database], sigmas=SESSION_SIGMAS
    )
    print(result.describe())

    print()
    print("=" * 72)
    print("2. property (4): paid-before-ship on the correct service")
    print("=" * 72)
    prop = property_4_paid_before_ship()
    result = verify_ltlfo(
        service, prop, databases=[database], sigmas=SESSION_SIGMAS
    )
    print(result.describe())

    print()
    print("=" * 72)
    print("3. property (4) on the broken service (wrong-amount payment)")
    print("=" * 72)
    broken = core_service_broken()
    result = verify_ltlfo(
        broken, prop, databases=[core_database(broken)], sigmas=SESSION_SIGMAS
    )
    print(result.describe())

    print()
    print("=" * 72)
    print("4. property (1): is COP always reached after LSP?")
    print("=" * 72)
    nav = property_1_navigation("LSP", "COP")
    result = verify_ltlfo(
        service, nav, databases=[database], sigmas=SESSION_SIGMAS
    )
    print(result.describe())
    print()
    print(
        "The violation is expected: the user can log out (or idle) "
        "forever without ever paying."
    )


if __name__ == "__main__":
    main()
