"""Tour of the boundary of decidability (Theorems 3.7, 3.8, 4.2; Lemma A.6).

Each stop runs one of the paper's undecidability reductions as code:

1. **Lemma A.6** — a QBF decided by the error-freeness checker
   (the PSPACE lower bound of Theorem 3.5);
2. **Theorem 3.7** — a Turing machine encoded as a Web service whose
   only deviation from the decidable class is a non-ground state atom
   in an input-option rule; the bounded verifier becomes a halting
   semi-decider;
3. **Theorem 3.8** — FD implication decided through a service with
   state projections;
4. the verifier's *refusals*: how each encoding is rejected by the
   restriction checks, with the failing rule pinpointed.

Run with:  python examples/undecidability_frontier.py
"""

from repro.reductions import (
    FunctionalDependency,
    LOOPER,
    QExists,
    QForall,
    QOr,
    QVar,
    TuringMachine,
    dependencies_to_service,
    halting_sentence,
    qbf_evaluate,
    qbf_to_service,
    simulate_tm,
    tm_to_service,
)
from repro.reductions.turing import BLANK
from repro.schema import Database
from repro.service import ServiceClass, classify
from repro.verifier import verify_error_free, verify_ltlfo


def main() -> None:
    print("=" * 72)
    print("1. Lemma A.6: QBF -> error-freeness")
    print("=" * 72)
    qbf = QExists("x", QForall("y", QOr(QVar("x"), QVar("y"))))
    print(f"QBF: {qbf}   (truth: {qbf_evaluate(qbf)})")
    service = qbf_to_service(qbf)
    result = verify_error_free(service, domain_size=2)
    print(f"encoded service errs: {not result.holds}")
    print("=> the error-freeness checker just decided the QBF (PSPACE-hard).")

    print()
    print("=" * 72)
    print("2. Theorem 3.7: Turing machine halting")
    print("=" * 72)
    one_step = TuringMachine(
        states=frozenset({"q0", "halt"}),
        alphabet=frozenset({BLANK, "1"}),
        transitions={("q0", BLANK): ("halt", "1", "S")},
    )
    for tm, label in ((one_step, "1-step halter"), (LOOPER, "looper")):
        halts, steps = simulate_tm(tm, max_steps=50)
        svc = tm_to_service(tm)
        db = Database(
            svc.schema.database,
            {"D": [("e0",), ("m0",)]},
            {"min": "m0"},
        )
        result = verify_ltlfo(
            svc, halting_sentence(tm),
            databases=[db], check_restrictions=False,
        )
        print(
            f"{label:14s}: simulator halts={halts!s:5s}  "
            f"verifier found halting run={not result.holds}"
        )
        report = classify(svc)
        reason = report.why_not(ServiceClass.INPUT_BOUNDED)[0]
        print(f"  outside the decidable class because: {reason}")

    print()
    print("=" * 72)
    print("3. Theorem 3.8: FD implication via state projections")
    print("=" * 72)
    fd = FunctionalDependency((0,), 1)
    for sigma, label, in [([fd], "Sigma={0->1}"), ([], "Sigma={}")]:
        svc, prop = dependencies_to_service(2, sigma, fd)
        result = verify_ltlfo(svc, prop, domain_size=2, check_restrictions=False)
        print(f"{label:12s} implies 0->1 ?  verifier says: {result.holds}")
    print(
        "=> the verifier decided dependency implication — possible only\n"
        "   because we bounded the database; unrestricted, Theorem 3.8\n"
        "   says no algorithm can."
    )

    print()
    print("=" * 72)
    print("4. the verifier refuses unrestricted instances, with reasons")
    print("=" * 72)
    svc = tm_to_service(one_step)
    try:
        verify_ltlfo(svc, halting_sentence(one_step))
    except Exception as exc:
        print(f"refused: {type(exc).__name__}")
        print(str(exc)[:400])


if __name__ == "__main__":
    main()
