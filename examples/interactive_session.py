"""Drive the Figure 2 store interactively, like the paper's demo site.

Plays a scripted shopping session against the full 19-page service —
login, laptop search, product view, cart, payment — printing each page
the way the paper's Web demo would render it, and finishing with the
run transcript.  Pass ``--repl`` for a free-form prompt where you pick
the inputs yourself.

Run with:  python examples/interactive_session.py [--repl]
"""

import sys

from repro.demo import ecommerce_database, ecommerce_service
from repro.service import Session


def scripted() -> None:
    service = ecommerce_service()
    session = Session(service, ecommerce_database(service))

    script = [
        ("log in as alice",
         {"button": ("login",)},
         {"name": "alice", "password": "pw1"}),
        ("browse laptops", {"button": ("laptop",)}, {}),
        ("search 8G/512G/14in",
         {"laptopsearch": ("8G", "512G", "14in"), "button": ("search",)}, {}),
        ("view the featherbook", {"select": ("l1", "999"), "button": ("view",)}, {}),
        ("add to cart", {"button": ("add to cart",)}, {}),
        ("buy", {"button": ("buy",)}, {}),
        ("pay 999",
         {"pay": ("999",), "button": ("authorize payment",)},
         {"ccno": "4111-1111-1111"}),
        ("continue shopping", {"button": ("continue shopping",)}, {}),
    ]

    for label, picks, constants in script:
        print(session.describe())
        print(f"\n>>> {label}\n")
        session.submit(picks=picks, constants=constants)
    print(session.describe())

    print("\n" + "=" * 72)
    print("run transcript")
    print("=" * 72)
    print(session.run().describe(service))


def repl() -> None:
    service = ecommerce_service()
    session = Session(service, ecommerce_database(service))
    print("Figure 2 store — type an input like  button=login  or")
    print("laptopsearch=8G,512G,14in ; constants like  name:alice ;")
    print("empty line submits, 'quit' exits.\n")
    while not session.at_error_page:
        print(session.describe())
        picks: dict = {}
        constants: dict = {}
        while True:
            line = input("> ").strip()
            if line == "quit":
                return
            if not line:
                break
            if ":" in line and "=" not in line:
                const, value = line.split(":", 1)
                constants[const.strip()] = value.strip()
            elif "=" in line:
                name, raw = line.split("=", 1)
                picks[name.strip()] = tuple(
                    part.strip() for part in raw.split(",")
                )
            else:
                print("  (unrecognised; use input=v1,v2 or constant:value)")
        try:
            session.submit(picks=picks, constants=constants)
        except Exception as exc:  # show the problem, keep the session
            print(f"  !! {exc}")
    print(session.describe())


if __name__ == "__main__":
    if "--repl" in sys.argv:
        repl()
    else:
        scripted()
