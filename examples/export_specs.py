"""Export the demo specifications to ``examples/specs/*.json``.

The committed JSON files are what CI's self-lint job runs ``repro
lint`` over; re-run this script after changing a demo module and commit
the result so the checked-in specs never drift from the code.

::

    PYTHONPATH=src python examples/export_specs.py
"""

from __future__ import annotations

from pathlib import Path

from repro.demo import (
    core_service,
    ecommerce_service,
    propositional_service,
    search_service,
)
from repro.io import save_service

SPECS = {
    "ecommerce": ecommerce_service,
    "core": core_service,
    "propositional": propositional_service,
    "search_site": search_service,
}


def main() -> None:
    out_dir = Path(__file__).parent / "specs"
    out_dir.mkdir(exist_ok=True)
    for name, build in SPECS.items():
        path = out_dir / f"{name}.json"
        save_service(build(), path)
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
