"""Export the demo specifications to ``examples/specs/*.json``.

The committed JSON files are what CI's self-lint job runs ``repro
lint`` over; re-run this script after changing a demo module and commit
the result so the checked-in specs never drift from the code.  The
script also refreshes ``examples/lint-baseline.json`` — the fingerprint
baseline the self-lint job passes via ``--baseline``, so the
*intentional* error-severity findings of the dataflow demo spec don't
fail CI while anything new still does.

::

    PYTHONPATH=src python examples/export_specs.py
"""

from __future__ import annotations

from pathlib import Path

from repro.demo import (
    core_service,
    dataflow_demo_service,
    ecommerce_service,
    propositional_service,
    search_service,
)
from repro.io import save_service
from repro.lint import lint_service, write_baseline

SPECS = {
    "ecommerce": ecommerce_service,
    "core": core_service,
    "propositional": propositional_service,
    "search_site": search_service,
    "dataflow_demo": dataflow_demo_service,
}


def main() -> None:
    out_dir = Path(__file__).parent / "specs"
    out_dir.mkdir(exist_ok=True)
    services = []
    for name, build in SPECS.items():
        path = out_dir / f"{name}.json"
        service = build()
        services.append(service)
        save_service(service, path)
        print(f"wrote {path}")
    # Baseline only the error-severity findings that are there on
    # purpose (the dataflow demo's); warnings don't fail the lint job.
    from repro.lint.diagnostics import Severity

    reports = []
    for service in services:
        report = lint_service(service)
        errors = [d for d in report.diagnostics
                  if d.severity is Severity.ERROR]
        if errors:
            reports.append(type(report)(
                service_name=report.service_name, diagnostics=errors
            ))
    baseline_path = Path(__file__).parent / "lint-baseline.json"
    count = write_baseline(reports, baseline_path)
    print(f"wrote {baseline_path} ({count} fingerprints)")


if __name__ == "__main__":
    main()
