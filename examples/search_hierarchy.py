"""The Figure 1 input-driven-search store (Example 4.8, Theorem 4.9).

Walks the category hierarchy interactively, then model checks CTL
properties over the concrete search graph:

- every in-stock product is reachable from the root (``EF`` per leaf);
- out-of-stock products never appear as options;
- picking inside the *new* branch always happens with the ``new`` flag
  set (the state the page schemas share, per the example).

Run with:  python examples/search_hierarchy.py
"""

from repro.ctl import AG, CAtom, CNot, EF
from repro.demo import figure1_database, search_service
from repro.demo.search_site import ROOT
from repro.service import Session
from repro.verifier import decidability_report, verify_input_driven_search


def main() -> None:
    service = search_service()
    database = figure1_database(service)

    print(decidability_report(service, EF(CAtom(("I", ("nl1",))))))
    print()

    print("=" * 72)
    print("browsing the Figure 1 hierarchy")
    print("=" * 72)
    session = Session(service, database)
    for pick in (ROOT, "used", "used laptops"):
        options = sorted(session.options()["I"])
        print(f"options: {[o[0] for o in options]}  -> pick {pick!r}")
        session.submit(picks={"I": (pick,)})
    print(f"options: {[o[0] for o in sorted(session.options()['I'])]}")
    print("(ul2 is out of stock and never offered)")

    print()
    print("=" * 72)
    print("CTL verification over the search graph (Theorem 4.9)")
    print("=" * 72)
    checks = [
        ("new laptop nl1 reachable", EF(CAtom(("I", ("nl1",)))), True),
        ("used laptop ul1 reachable", EF(CAtom(("I", ("ul1",)))), True),
        ("out-of-stock ul2 unreachable", EF(CAtom(("I", ("ul2",)))), False),
        (
            "new-branch picks set the flag",
            AG(CNot(CAtom(("I", ("nd1",)))) | CAtom("new")),
            True,
        ),
    ]
    for label, prop, expected in checks:
        result = verify_input_driven_search(
            service, prop, databases=[database]
        )
        status = "ok" if result.holds == expected else "UNEXPECTED"
        print(
            f"  {label:35s} verdict={result.verdict.value:9s} "
            f"expected={'holds' if expected else 'violated'}  [{status}]"
        )


if __name__ == "__main__":
    main()
