"""Smoke-test the verification daemon against a direct in-process run.

Boots ``python -m repro serve`` as a real subprocess on a free port,
registers every spec under ``examples/specs/``, then for each one:

1. POSTs ``/verify`` (``G !ERROR``, database cap 1, forced) and waits;
2. runs the *same* verification directly in this process;
3. diffs verdict, holds flag, procedure and counterexample rendering —
   they must be identical (the daemon adds transport, not semantics);
4. repeats the request and checks the registry amortization: the
   second job's trace must show ``registry.hit`` and a Büchi automaton
   served from cache.

Exit code 0 when everything matches; 1 with a diff otherwise.  This is
what CI's ``server-smoke`` job runs.

Usage::

    PYTHONPATH=src python examples/server_smoke.py
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SPEC_DIR = ROOT / "examples" / "specs"
VERIFY_OPTIONS = {"max_databases": 1, "max_snapshots": 5000}


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def request(base: str, method: str, path: str, body=None, timeout=180):
    data = None if body is None else json.dumps(body).encode("utf-8")
    req = urllib.request.Request(base + path, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def wait_for_boot(base: str, proc, deadline_s: float = 30.0) -> None:
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(f"daemon exited early with {proc.returncode}")
        try:
            status, _ = request(base, "GET", "/healthz", timeout=2)
            if status == 200:
                return
        except (urllib.error.URLError, OSError):
            time.sleep(0.2)
    raise SystemExit("daemon did not come up in time")


def direct_verify(spec_path: Path) -> dict:
    from repro.io import load_service
    from repro.ltl.parser import parse_ltlfo
    from repro.server.app import _fold_budget
    from repro.server.wire import result_to_dict
    from repro.verifier import verify

    service = load_service(spec_path)
    prop = parse_ltlfo(
        "G !ERROR",
        input_constants=service.schema.input_constants,
        db_constants=service.schema.database.constants,
    )
    opts = _fold_budget(dict(VERIFY_OPTIONS))
    result = verify(service, prop, force=True, **opts)
    return result_to_dict(result, service)


def main() -> int:
    port = free_port()
    base = f"http://127.0.0.1:{port}"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(port), "--specs", str(SPEC_DIR), "--quiet"],
        env=env,
    )
    failures = 0
    try:
        wait_for_boot(base, proc)

        status, listing = request(base, "GET", "/specs")
        assert status == 200, listing
        by_name = {e["name"]: e["spec_id"] for e in listing["specs"]}
        print(f"daemon up on {base}; {len(by_name)} specs registered")

        spec_files = sorted(SPEC_DIR.glob("*.json"))
        assert len(spec_files) == len(by_name), "preregistration incomplete"

        for spec_path in spec_files:
            data = json.loads(spec_path.read_text(encoding="utf-8"))
            sid = by_name[data["name"]]
            payload = {
                "spec_id": sid, "ltl": "G !ERROR",
                "options": dict(VERIFY_OPTIONS), "force": True,
                "wait": False,
            }
            status, body = request(base, "POST", "/verify", payload)
            assert status == 202, body
            job_id = body["job_id"]
            deadline = time.monotonic() + 180
            while time.monotonic() < deadline:
                status, body = request(base, "GET", f"/jobs/{job_id}")
                if body["status"] in ("done", "failed"):
                    break
                time.sleep(0.3)
            if body["status"] != "done":
                print(f"FAIL {spec_path.name}: job {body['status']}: "
                      f"{body.get('error')}")
                failures += 1
                continue

            served = body["result"]
            expected = direct_verify(spec_path)
            diffs = [
                field for field in ("verdict", "holds", "procedure",
                                    "counterexample",
                                    "counterexample_database")
                if served.get(field) != expected.get(field)
            ]
            if diffs:
                print(f"FAIL {spec_path.name}: served != direct on {diffs}")
                print("  served:  ", {d: served.get(d) for d in diffs})
                print("  expected:", {d: expected.get(d) for d in diffs})
                failures += 1
            else:
                print(f"ok   {spec_path.name}: verdict="
                      f"{served['verdict']} (parity)")

            # amortization check: the repeat request hits every cache
            status, body = request(base, "POST", "/verify",
                                   {**payload, "wait": True})
            assert status == 200, body
            with urllib.request.urlopen(
                f"{base}/jobs/{body['job_id']}/events", timeout=30
            ) as resp:
                events = [json.loads(line)
                          for line in resp.read().decode().splitlines()]
            names = [e["name"] for e in events]
            buchi = [e for e in events if e["name"] == "buchi.compiled"]
            if "registry.hit" not in names or not all(
                e.get("cached") for e in buchi
            ):
                print(f"FAIL {spec_path.name}: repeat request recompiled "
                      f"(events: {names})")
                failures += 1
            else:
                print(f"ok   {spec_path.name}: repeat request cached "
                      f"(registry.hit, buchi cached)")

        status, stats = request(base, "GET", "/healthz")
        print("registry stats:", stats["registry"])
        if stats["registry"]["recompiles"]:
            print("FAIL: registry reports recompiles")
            failures += 1
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()

    print("smoke:", "FAILED" if failures else "PASSED")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
