"""Quickstart: specify a tiny data-driven Web service and verify it.

A two-page sign-off workflow: a document can be submitted on the home
page and then approved or rejected on a review page.  We verify the
linear-time property "nothing is ever approved before it was submitted"
(the shape of the paper's paid-before-ship property (2)/(4)) and get a
concrete counterexample lasso when we break the service.

Run with:  python examples/quickstart.py
"""

from repro import Database, LTLFOSentence, ServiceBuilder, verify
from repro.fol import Atom, Not, Var
from repro.ltl import B
from repro.verifier import decidability_report


def build_service(broken: bool = False):
    b = ServiceBuilder("sign-off" + ("-broken" if broken else ""))
    b.database("document", 1)          # the fixed document catalog
    b.input("submit", 1)               # user picks a document to submit
    b.input("decide", 1)               # reviewer picks one to approve
    b.state("submitted", 1)
    b.action("approve", 1)

    home = b.page("HOME", home=True)
    home.options("submit", "document(d)", ("d",))
    home.insert("submitted", "submit(d)", ("d",))
    home.target("REVIEW", "exists d . submit(d)")

    review = b.page("REVIEW")
    if broken:
        # BUG: any document can be approved, submitted or not.
        review.options("decide", "document(d)", ("d",))
    else:
        # the just-submitted document flows in through prev_submit,
        # keeping the rule input-bounded (§3)
        review.options("decide", "prev_submit(d)", ("d",))
    review.act("approve", "decide(d)", ("d",))
    review.target("HOME", "true")
    return b.build()


def main() -> None:
    service = build_service()
    database = Database(
        service.schema.database,
        {"document": [("report",), ("invoice",)]},
    )

    # "for every document x: x is submitted before x is ever approved"
    prop = LTLFOSentence(
        ("x",),
        B(Atom("submit", (Var("x"),)), Not(Atom("approve", (Var("x"),)))),
        name="submitted before approved",
    )

    print(decidability_report(service, prop))
    print()

    result = verify(service, prop, databases=[database])
    print(result.describe())
    print()

    broken = build_service(broken=True)
    result2 = verify(broken, prop, databases=[
        Database(
            broken.schema.database,
            {"document": [("report",), ("invoice",)]},
        )
    ])
    # submit the invoice, approve the never-submitted report:
    print(result2.describe(broken))


if __name__ == "__main__":
    main()
