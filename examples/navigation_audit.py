"""Static and branching-time navigation analysis of the Figure 2 site.

The paper's introduction motivates verification with authoring-time
questions: is every page reachable, are transitions unambiguous, is the
input-constant protocol respected, can the user always get home?  This
example runs the full audit stack on the 19-page demo store:

1. the static audits (page graph, constant protocol, ambiguity);
2. the error-freeness verifier confirming the audit's warnings with a
   concrete error trace;
3. Example 4.3's CTL properties on the propositional abstraction
   (``AG EF HP``, login-to-payment).

Run with:  python examples/navigation_audit.py
"""

from repro.analysis import audit_service
from repro.demo import (
    ecommerce_database,
    ecommerce_service,
    example_43_home_reachable,
    example_43_login_to_payment,
    propositional_service,
)
from repro.verifier import verify, verify_error_free


def main() -> None:
    service = ecommerce_service()

    print("=" * 72)
    print("1. static audit of the full 19-page site")
    print("=" * 72)
    print(audit_service(service))

    print()
    print("=" * 72)
    print("2. confirming the protocol warnings with the verifier")
    print("=" * 72)
    database = ecommerce_database(service)
    result = verify_error_free(
        service,
        databases=[database],
        sigmas=[{"name": "alice", "password": "pw1",
                 "repassword": "pw1", "ccno": "cc-1"}],
    )
    print(result.describe())
    print()
    print(
        "The error trace shows the demo's constant-protocol flaw: "
        "navigating back to HP re-requests @name/@password "
        "(Definition 2.3, condition (ii))."
    )

    print()
    print("=" * 72)
    print("3. Example 4.3 CTL properties on the propositional abstraction")
    print("=" * 72)
    abstraction = propositional_service()
    for prop in (
        example_43_home_reachable(),
        example_43_login_to_payment(),
    ):
        result = verify(abstraction, prop)
        print(result.describe())
        print()


if __name__ == "__main__":
    main()
